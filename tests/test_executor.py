"""The process-pool executor: isolation, retries, timeouts, resume.

The load-bearing assertions here are the determinism ones: parallel and
killed-then-resumed runs must reproduce a serial run's simulated metrics
bit-for-bit. Fault tolerance is exercised with the ``REPRO_EXEC_INJECT``
hook (crash / sigkill / hang / flaky), never by hoping for real crashes.
"""

import json

import pytest

from repro.api import RunRequest, execute
from repro.exec import (
    INJECT_ENV,
    Executor,
    ExecutorConfig,
    JournalError,
    RunJournal,
    Task,
    experiment_task,
    list_runs,
    validate_state,
)
from repro.harness.experiment import calibrate_system

#: One calibration shared by every cell here (keeps the tests fast and
#: makes every request fully pinned up front).
SYSTEM = calibrate_system("mobilenet")

FAST = ExecutorConfig(workers=2, retries=1, backoff=0.01, poll_interval=0.005)


def tiny_request(policy="um", batch=64, seed=0):
    return RunRequest(model="mobilenet", policy=policy, batch=batch,
                      scale=0.5, warmup_iterations=1, measure_iterations=1,
                      seed=seed, system=SYSTEM)


def tiny_tasks(policies=("um", "deepum", "lms")):
    return [experiment_task(tiny_request(p)) for p in policies]


def inject(monkeypatch, spec):
    monkeypatch.setenv(INJECT_ENV, json.dumps(spec))


# ---------------------------------------------------------------- config

def test_config_validation():
    with pytest.raises(ValueError):
        ExecutorConfig(workers=0)
    with pytest.raises(ValueError):
        ExecutorConfig(retries=-1)
    with pytest.raises(ValueError):
        ExecutorConfig(cell_timeout=0.0)
    assert ExecutorConfig(workers=3).to_dict()["workers"] == 3


def test_duplicate_task_keys_rejected():
    tasks = [experiment_task(tiny_request("um")),
             experiment_task(tiny_request("um"))]
    with pytest.raises(ValueError, match="duplicate"):
        Executor(FAST).run_tasks(tasks)


def test_unknown_task_kind_rejected():
    with pytest.raises(ValueError, match="kind"):
        Task(key="x", kind="mystery", payload={})


# ---------------------------------------------------- parallel == serial

def test_parallel_reproduces_serial_bit_for_bit():
    policies = ("um", "deepum", "lms")
    serial = {
        experiment_task(tiny_request(p)).key:
            execute(tiny_request(p)).snapshot
        for p in policies
    }
    results = Executor(ExecutorConfig(workers=3)).run_tasks(
        tiny_tasks(policies))
    assert set(results) == set(serial)
    for key, doc in results.items():
        assert doc["status"] == "ok"
        assert doc["snapshot"] == serial[key]


def test_oom_cell_degrades_not_aborts():
    tasks = [experiment_task(tiny_request("um")),
             experiment_task(tiny_request("um", batch=50_000))]
    results = Executor(FAST).run_tasks(tasks)
    by_key = {k.split("@")[1]: v for k, v in results.items()}
    assert by_key["64/um"]["status"] == "ok"
    assert by_key["50000/um"]["status"] in ("oom", "failed")
    assert by_key["50000/um"]["error"]


# --------------------------------------------------------------- journal

def test_journal_create_load_round_trip(tmp_path):
    journal = RunJournal.create(tiny_tasks(), kind="run",
                                meta={"note": "hi"},
                                executor=FAST.to_dict(),
                                runs_dir=str(tmp_path))
    again = RunJournal.load(journal.run_id, str(tmp_path))
    assert again.kind == "run"
    assert again.meta == {"note": "hi"}
    assert set(again.keys()) == set(journal.keys())
    assert again.unfinished() == sorted(
        journal.keys())  # state.json sorts keys
    assert again.counts() == {"pending": 3}


def test_journal_rejects_duplicates_and_empty(tmp_path):
    with pytest.raises(JournalError, match="no tasks"):
        RunJournal.create([], kind="run", runs_dir=str(tmp_path))
    tasks = [experiment_task(tiny_request("um")),
             experiment_task(tiny_request("um"))]
    with pytest.raises(JournalError, match="duplicate"):
        RunJournal.create(tasks, kind="run", runs_dir=str(tmp_path))


def test_journal_refuses_reused_run_id(tmp_path):
    RunJournal.create(tiny_tasks(), kind="run", runs_dir=str(tmp_path),
                      run_id="twice")
    with pytest.raises(JournalError, match="already exists"):
        RunJournal.create(tiny_tasks(), kind="run", runs_dir=str(tmp_path),
                          run_id="twice")


def test_validate_state_rejects_malformed(tmp_path):
    with pytest.raises(JournalError):
        validate_state([])
    with pytest.raises(JournalError, match="schema_version"):
        validate_state({"journal_schema_version": 99})
    good = RunJournal.create(
        tiny_tasks(), kind="run", runs_dir=str(tmp_path)).state
    bad = json.loads(json.dumps(good))
    bad["tasks"]["mobilenet@64/um"]["status"] = "exploded"
    with pytest.raises(JournalError, match="status"):
        validate_state(bad)


def test_journal_finish_requires_terminal_status(tmp_path):
    journal = RunJournal.create(tiny_tasks(), kind="run",
                                runs_dir=str(tmp_path))
    with pytest.raises(JournalError, match="non-terminal"):
        journal.finish("mobilenet@64/um", {"status": "running"})


def test_list_runs_summarizes(tmp_path):
    assert list_runs(str(tmp_path)) == []
    journal = RunJournal.create(tiny_tasks(), kind="sweep-degree",
                                runs_dir=str(tmp_path))
    (tmp_path / "not-a-run").mkdir()
    runs = list_runs(str(tmp_path))
    assert len(runs) == 1
    assert runs[0]["run_id"] == journal.run_id
    assert runs[0]["kind"] == "sweep-degree"
    assert runs[0]["counts"] == {"pending": 3}


# ---------------------------------------------------------------- resume

def test_killed_run_resumes_to_identical_results(tmp_path):
    policies = ("um", "deepum", "lms", "ideal")
    serial = {
        experiment_task(tiny_request(p)).key:
            execute(tiny_request(p)).snapshot
        for p in policies
    }
    journal = RunJournal.create(tiny_tasks(policies), kind="run",
                                runs_dir=str(tmp_path))
    # "Kill" the run after two cells finish.
    partial = Executor(ExecutorConfig(workers=1)).run_journal(
        journal, limit=2)
    assert len(partial) == 2
    reloaded = RunJournal.load(journal.run_id, str(tmp_path))
    assert len(reloaded.unfinished()) == 2
    # A fresh executor (fresh process, different worker count) finishes it.
    results = Executor(ExecutorConfig(workers=2)).run_journal(reloaded)
    assert {k: v["snapshot"] for k, v in results.items()} == serial
    assert reloaded.counts() == {"ok": 4}
    # Resuming a finished run re-executes nothing and returns the same.
    again = Executor(FAST).run_journal(
        RunJournal.load(journal.run_id, str(tmp_path)))
    assert {k: v["snapshot"] for k, v in again.items()} == serial


def test_interrupted_running_cells_are_rerun(tmp_path):
    journal = RunJournal.create(tiny_tasks(("um",)), kind="run",
                                runs_dir=str(tmp_path))
    # Simulate a cell that was in flight when the process died.
    journal.mark_running("mobilenet@64/um", 1)
    reloaded = RunJournal.load(journal.run_id, str(tmp_path))
    assert reloaded.unfinished() == ["mobilenet@64/um"]
    results = Executor(FAST).run_journal(reloaded)
    assert results["mobilenet@64/um"]["status"] == "ok"


def test_journal_reset_sends_cells_back_to_pending(tmp_path):
    journal = RunJournal.create(tiny_tasks(("um",)), kind="run",
                                runs_dir=str(tmp_path))
    journal.finish("mobilenet@64/um",
                   {"status": "failed", "error": "flaky infra"})
    assert journal.counts() == {"failed": 1}
    journal.reset(["mobilenet@64/um"])
    reloaded = RunJournal.load(journal.run_id, str(tmp_path))
    assert reloaded.counts() == {"pending": 1}
    assert reloaded.error("mobilenet@64/um") == ""


# ------------------------------------------------------- fault injection

def test_worker_crash_isolates_to_one_cell(monkeypatch):
    inject(monkeypatch, {"mobilenet@64/deepum": {"mode": "sigkill"}})
    config = ExecutorConfig(workers=2, retries=0, poll_interval=0.005)
    results = Executor(config).run_tasks(tiny_tasks(("um", "deepum")))
    assert results["mobilenet@64/um"]["status"] == "ok"
    crashed = results["mobilenet@64/deepum"]
    assert crashed["status"] == "failed"
    assert "worker crashed" in crashed["error"]


def test_clean_crash_reports_exit_code(monkeypatch):
    inject(monkeypatch,
           {"mobilenet@64/um": {"mode": "crash", "exit_code": 7}})
    config = ExecutorConfig(workers=1, retries=0, poll_interval=0.005)
    results = Executor(config).run_tasks(tiny_tasks(("um",)))
    assert results["mobilenet@64/um"]["status"] == "failed"
    assert "exit code 7" in results["mobilenet@64/um"]["error"]


def test_flaky_cell_succeeds_on_retry(monkeypatch, tmp_path):
    inject(monkeypatch,
           {"mobilenet@64/um": {"mode": "flaky", "ok_on_attempt": 2}})
    journal = RunJournal.create(tiny_tasks(("um",)), kind="run",
                                runs_dir=str(tmp_path))
    results = Executor(FAST).run_journal(journal)
    doc = results["mobilenet@64/um"]
    assert doc["status"] == "ok"
    assert doc["attempts"] == 2
    assert journal.attempts("mobilenet@64/um") == 2
    # The journaled snapshot equals a clean serial run: retries must not
    # perturb simulated metrics.
    assert doc["snapshot"] == execute(tiny_request("um")).snapshot


def test_retry_budget_exhausts_to_failed(monkeypatch):
    inject(monkeypatch,
           {"mobilenet@64/um": {"mode": "flaky", "ok_on_attempt": 99}})
    config = ExecutorConfig(workers=1, retries=2, backoff=0.01,
                            poll_interval=0.005)
    results = Executor(config).run_tasks(tiny_tasks(("um",)))
    doc = results["mobilenet@64/um"]
    assert doc["status"] == "failed"
    assert doc["attempts"] == 3  # 1 initial + 2 retries
    assert "injected flaky failure" in doc["error"]


def test_hung_cell_times_out_without_retry(monkeypatch):
    inject(monkeypatch,
           {"mobilenet@64/um": {"mode": "hang", "seconds": 60.0}})
    config = ExecutorConfig(workers=2, retries=3, cell_timeout=0.5,
                            backoff=0.01, poll_interval=0.005)
    results = Executor(config).run_tasks(tiny_tasks(("um", "deepum")))
    hung = results["mobilenet@64/um"]
    assert hung["status"] == "timeout"
    assert hung["attempts"] == 1  # timeouts are deterministic: no retry
    assert "wall-clock timeout" in hung["error"]
    assert results["mobilenet@64/deepum"]["status"] == "ok"


# ------------------------------------------------------------- telemetry

def test_executor_emits_exec_track_events():
    from repro.obs import TRACK_EXEC, SpanRecorder

    recorder = SpanRecorder()
    Executor(FAST, recorder=recorder).run_tasks(tiny_tasks(("um",)))
    spans = [s for s in recorder.spans if s.track == TRACK_EXEC]
    instants = [i for i in recorder.instants if i.track == TRACK_EXEC]
    assert any(s.name == "mobilenet@64/um" for s in spans)
    assert any(i.name == "start mobilenet@64/um" for i in instants)
    span = next(s for s in spans if s.name == "mobilenet@64/um")
    assert span.args["status"] == "ok"


def test_progress_lines_cover_every_cell():
    lines = []
    Executor(FAST, progress=lines.append).run_tasks(
        tiny_tasks(("um", "deepum")))
    text = "\n".join(lines)
    assert "mobilenet@64/um: ok" in text
    assert "mobilenet@64/deepum: ok" in text
