"""Result export (CSV/JSON)."""

import io
import json

import pytest

from repro.harness import calibrate_system, run_experiment
from repro.harness.export import (
    FIELDS,
    load_json,
    result_record,
    save,
    write_csv,
    write_json,
)

TINY = 0.0625


@pytest.fixture(scope="module")
def results():
    system = calibrate_system("bert-base", scale=TINY, mid_batch=8)
    return [
        run_experiment("bert-base", 8, policy, scale=TINY, system=system,
                       warmup_iterations=2, measure_iterations=2)
        for policy in ("um", "deepum")
    ]


def test_record_has_all_fields(results):
    record = result_record(results[0])
    assert set(record) == set(FIELDS)
    assert record["model"] == "bert-base"
    assert record["seconds_per_100_iterations"] > 0


def test_csv_round_trippable(results):
    buf = io.StringIO()
    assert write_csv(results, buf) == 2
    lines = buf.getvalue().splitlines()
    assert lines[0].split(",") == list(FIELDS)
    assert len(lines) == 3


def test_json_round_trip(results, tmp_path):
    path = tmp_path / "results.json"
    assert save(results, str(path)) == 2
    loaded = load_json(str(path))
    assert loaded[0]["policy"] == "um"
    assert loaded[1]["policy"] == "deepum"
    assert loaded[1]["faults_per_iteration"] < loaded[0]["faults_per_iteration"]


def test_save_csv_by_extension(results, tmp_path):
    path = tmp_path / "results.csv"
    assert save(results, str(path)) == 2
    assert path.read_text().startswith("model,")


def test_save_rejects_unknown_extension(results, tmp_path):
    with pytest.raises(ValueError):
        save(results, str(tmp_path / "results.parquet"))


def test_oom_result_exports_cleanly():
    from repro.config import GPUSpec, HostSpec, SystemConfig
    from repro.constants import MiB

    starved = SystemConfig(gpu=GPUSpec(memory_bytes=16 * MiB),
                           host=HostSpec(memory_bytes=12 * MiB))
    result = run_experiment("bert-base", 8, "um", scale=TINY, system=starved)
    record = result_record(result)
    assert record["oom"] is True
    assert record["seconds_per_100_iterations"] is None
    buf = io.StringIO()
    write_json([result], buf)
    assert json.loads(buf.getvalue())[0]["oom"] is True
