"""Facade interfaces: uniform surface across all ten memory systems."""

import pytest

from repro.config import DeepUMConfig, GPUSpec, HostSpec, SystemConfig
from repro.constants import GiB, MiB
from repro.harness.experiment import POLICIES, build_policy

from workloads import make_mlp_workload


@pytest.fixture
def system():
    return SystemConfig(gpu=GPUSpec(memory_bytes=96 * MiB),
                        host=HostSpec(memory_bytes=2 * GiB))


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_every_policy_exposes_uniform_interface(policy, system):
    facade = build_policy(policy, system)
    assert hasattr(facade, "device")
    assert hasattr(facade, "elapsed")
    assert hasattr(facade, "energy_joules")
    assert hasattr(facade, "page_faults")
    assert hasattr(facade, "peak_populated_bytes")


@pytest.mark.parametrize("policy", ["um", "deepum", "ideal", "lms",
                                    "sentinel", "capuchin"])
def test_every_policy_trains_toy_mlp(policy, system):
    facade = build_policy(policy, system)
    step, _, _ = make_mlp_workload(facade.device, layers_n=4, dim=512,
                                   batch=64)
    for _ in range(2):
        step()
    assert facade.elapsed() > 0
    assert facade.energy_joules() > 0


def test_deepum_config_threading(system):
    facade = build_policy("deepum", system,
                         deepum_config=DeepUMConfig(prefetch_degree=7))
    assert facade.driver.prefetcher.degree == 7


def test_seed_threading(system):
    a = build_policy("swapadvisor", system, seed=1)
    b = build_policy("swapadvisor", system, seed=1)
    for facade in (a, b):
        step, _, _ = make_mlp_workload(facade.device, layers_n=6, dim=1024,
                                       batch=128)
        for _ in range(3):
            step()
    assert a.elapsed() == b.elapsed()


def test_ideal_never_faults_after_first_touch(system):
    facade = build_policy("ideal", system)
    step, _, _ = make_mlp_workload(facade.device, layers_n=4, dim=512,
                                   batch=64)
    step()
    step()  # second warm-up: the allocator reaches its steady layout here
    after_warmup = facade.page_faults
    step()
    step()
    assert facade.page_faults == after_warmup
    assert facade.engine.stats.evictions == 0


def test_um_and_deepum_same_footprint(system):
    results = {}
    for policy in ("um", "deepum"):
        facade = build_policy(policy, system)
        step, _, _ = make_mlp_workload(facade.device, layers_n=4, dim=512,
                                       batch=64)
        step()
        results[policy] = facade.peak_populated_bytes
    assert results["um"] == results["deepum"]
