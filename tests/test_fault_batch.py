"""End-to-end fault-buffer batches through the handler (Fig. 3)."""

import pytest

from repro.config import FaultCosts, LinkSpec
from repro.constants import PAGE_SIZE, PAGES_PER_UM_BLOCK, UM_BLOCK_SIZE
from repro.sim.fault import FaultAccessType, FaultBuffer
from repro.sim.fault_handler import DriverFaultHandler
from repro.sim.gpu import GPUMemory
from repro.sim.interconnect import PCIeLink
from repro.sim.um_space import BlockLocation, UnifiedMemorySpace


def make_handler(capacity_blocks=4):
    um = UnifiedMemorySpace()
    gpu = GPUMemory(capacity_bytes=capacity_blocks * UM_BLOCK_SIZE)
    spec = LinkSpec()
    link = PCIeLink(bandwidth=spec.bandwidth, latency=spec.latency,
                    page_overhead=spec.page_overhead)
    return um, gpu, DriverFaultHandler(um=um, gpu=gpu, link=link,
                                       costs=FaultCosts())


def cpu_block(um, idx):
    blk = um.block(idx)
    blk.populate(512)
    blk.location = BlockLocation.CPU
    return blk


def test_batch_resolves_all_faulted_blocks():
    um, gpu, handler = make_handler()
    a, b = cpu_block(um, 0), cpu_block(um, 1)
    buffer = FaultBuffer()
    buffer.record(0, FaultAccessType.READ, 0.0)
    buffer.record(UM_BLOCK_SIZE, FaultAccessType.WRITE, 0.1)
    end = handler.handle_batch(buffer, now=0.0)
    assert gpu.is_resident(a) and gpu.is_resident(b)
    assert end > 0.0
    assert len(buffer) == 0


def test_batch_dedups_pages_before_counting():
    um, gpu, handler = make_handler()
    cpu_block(um, 0)
    buffer = FaultBuffer()
    for _ in range(5):  # the GPU raises many entries for one hot page
        buffer.record(0, FaultAccessType.READ, 0.0)
    buffer.record(PAGE_SIZE, FaultAccessType.READ, 0.0)
    handler.handle_batch(buffer, now=0.0)
    assert handler.stats.page_faults == 2  # pages 0 and 1, deduplicated


def test_batch_skips_blocks_already_resident():
    um, gpu, handler = make_handler()
    blk = cpu_block(um, 0)
    handler.resolve_block_fault(blk, 0.0, 512)
    batches_before = handler.stats.fault_batches
    buffer = FaultBuffer()
    buffer.record(0, FaultAccessType.READ, 1.0)
    handler.handle_batch(buffer, now=1.0)
    assert handler.stats.fault_batches == batches_before


def test_batch_preserves_first_fault_order():
    um, gpu, handler = make_handler(capacity_blocks=1)
    cpu_block(um, 0)
    cpu_block(um, 1)
    buffer = FaultBuffer()
    buffer.record(UM_BLOCK_SIZE, FaultAccessType.READ, 0.0)  # block 1 first
    buffer.record(0, FaultAccessType.READ, 0.1)
    handler.handle_batch(buffer, now=0.0)
    # With room for one block, the later-faulting block (0) wins: block 1
    # was resolved first, then evicted for block 0.
    assert gpu.is_resident(um.block(0))
    assert not gpu.is_resident(um.block(1))


def test_batch_serializes_transfers():
    um, gpu, handler = make_handler()
    for i in range(3):
        cpu_block(um, i)
    buffer = FaultBuffer()
    for i in range(3):
        buffer.record(i * UM_BLOCK_SIZE, FaultAccessType.READ, 0.0)
    end = handler.handle_batch(buffer, now=0.0)
    single = handler.link.transfer_time(
        UM_BLOCK_SIZE, faulted_pages=PAGES_PER_UM_BLOCK)
    assert end >= 3 * single
