"""Hardware fault buffer and driver-side fault preprocessing (Fig. 3)."""

from repro.constants import PAGE_SIZE, PAGES_PER_UM_BLOCK
from repro.sim.fault import FaultAccessType, FaultBuffer, FaultEntry, group_faults


def test_record_and_drain():
    buf = FaultBuffer()
    buf.record(0, FaultAccessType.READ, 0.0)
    buf.record(PAGE_SIZE, FaultAccessType.WRITE, 1.0)
    entries = buf.drain()
    assert [e.page for e in entries] == [0, 1]
    assert len(buf) == 0


def test_drain_clears_buffer():
    buf = FaultBuffer()
    buf.record(0, FaultAccessType.READ, 0.0)
    buf.drain()
    assert buf.drain() == []


def test_capacity_drops_overflow():
    buf = FaultBuffer(capacity=2)
    for i in range(5):
        buf.record(i * PAGE_SIZE, FaultAccessType.READ, 0.0)
    assert len(buf) == 2
    assert buf.dropped == 3
    assert buf.total_recorded == 2


def test_group_faults_dedups_pages():
    entries = [
        FaultEntry(0, FaultAccessType.READ, 0.0),
        FaultEntry(0, FaultAccessType.READ, 1.0),
        FaultEntry(1, FaultAccessType.READ, 2.0),
    ]
    grouped = group_faults(entries)
    assert len(grouped[0]) == 2  # pages 0 and 1, same UM block
    pages = [e.page for e in grouped[0]]
    assert pages == [0, 1]


def test_group_faults_write_dominates_read():
    entries = [
        FaultEntry(0, FaultAccessType.READ, 0.0),
        FaultEntry(0, FaultAccessType.WRITE, 1.0),
    ]
    grouped = group_faults(entries)
    (entry,) = grouped[0]
    assert entry.access is FaultAccessType.WRITE
    assert entry.timestamp == 0.0  # first-fault timestamp preserved


def test_group_faults_groups_by_um_block():
    entries = [
        FaultEntry(0, FaultAccessType.READ, 0.0),
        FaultEntry(PAGES_PER_UM_BLOCK, FaultAccessType.READ, 1.0),
        FaultEntry(1, FaultAccessType.READ, 2.0),
    ]
    grouped = group_faults(entries)
    assert set(grouped) == {0, 1}
    assert [e.page for e in grouped[0]] == [0, 1]
    assert [e.page for e in grouped[1]] == [PAGES_PER_UM_BLOCK]


def test_group_faults_preserves_first_fault_order():
    entries = [
        FaultEntry(5, FaultAccessType.READ, 0.0),
        FaultEntry(3, FaultAccessType.READ, 1.0),
        FaultEntry(5, FaultAccessType.WRITE, 2.0),
    ]
    grouped = group_faults(entries)
    assert [e.page for e in grouped[0]] == [5, 3]
