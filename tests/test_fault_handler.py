"""The driver fault-handling pipeline: eviction, migration, invalidation."""

import pytest

from repro.config import FaultCosts, LinkSpec
from repro.constants import UM_BLOCK_SIZE
from repro.sim.fault_handler import DriverFaultHandler, LRUMigratedPolicy
from repro.sim.gpu import GPUMemory
from repro.sim.interconnect import PCIeLink
from repro.sim.um_space import BlockLocation, UnifiedMemorySpace


def make_handler(capacity_blocks=4):
    um = UnifiedMemorySpace()
    gpu = GPUMemory(capacity_bytes=capacity_blocks * UM_BLOCK_SIZE)
    spec = LinkSpec()
    link = PCIeLink(bandwidth=spec.bandwidth, latency=spec.latency,
                    page_overhead=spec.page_overhead)
    handler = DriverFaultHandler(um=um, gpu=gpu, link=link, costs=FaultCosts())
    return um, gpu, link, handler


def full_block(um, idx, *, on_cpu=True):
    blk = um.block(idx)
    blk.populate(512)
    if on_cpu:
        blk.location = BlockLocation.CPU
    return blk


def test_fault_migrates_cpu_block():
    um, gpu, link, handler = make_handler()
    blk = full_block(um, 0)
    t = handler.resolve_block_fault(blk, now=0.0, page_faults=512)
    assert gpu.is_resident(blk)
    assert handler.stats.page_faults == 512
    assert handler.stats.migrated_in_bytes == UM_BLOCK_SIZE
    # handling + transfer (with page tax) + replay are all on the path
    expected_min = (handler.costs.handling_overhead
                    + link.transfer_time(UM_BLOCK_SIZE, faulted_pages=512)
                    + handler.costs.replay_overhead)
    assert t == pytest.approx(expected_min)


def test_first_touch_fault_needs_no_transfer():
    um, gpu, link, handler = make_handler()
    blk = full_block(um, 0, on_cpu=False)  # UNPOPULATED
    t = handler.resolve_block_fault(blk, now=0.0, page_faults=512)
    assert gpu.is_resident(blk)
    assert handler.stats.migrated_in_bytes == 0
    assert handler.stats.first_touch_faults == 1
    assert link.bytes_to_gpu == 0
    assert t == pytest.approx(
        handler.costs.handling_overhead + handler.costs.replay_overhead
    )


def test_fault_evicts_when_full():
    um, gpu, link, handler = make_handler(capacity_blocks=2)
    a = full_block(um, 0)
    b = full_block(um, 1)
    handler.resolve_block_fault(a, 0.0, 512)
    handler.resolve_block_fault(b, 1.0, 512)
    c = full_block(um, 2)
    handler.resolve_block_fault(c, 2.0, 512)
    # Least recently migrated (a) was evicted and written back.
    assert not gpu.is_resident(a)
    assert a.location is BlockLocation.CPU
    assert handler.stats.evictions == 1
    assert link.bytes_to_cpu == UM_BLOCK_SIZE


def test_invalidated_victim_is_dropped_without_traffic():
    um, gpu, link, handler = make_handler(capacity_blocks=1)
    a = full_block(um, 0)
    handler.resolve_block_fault(a, 0.0, 512)
    a.invalidated = True
    b = full_block(um, 1)
    handler.resolve_block_fault(b, 1.0, 512)
    assert not gpu.is_resident(a)
    assert a.location is BlockLocation.UNPOPULATED
    assert handler.stats.invalidated_evictions == 1
    assert handler.stats.evictions == 0
    assert link.bytes_to_cpu == 0


def test_prefetch_block_moves_off_critical_path():
    um, gpu, link, handler = make_handler()
    blk = full_block(um, 0)
    end = handler.prefetch_block(blk, earliest=0.0)
    assert end is not None
    assert gpu.is_resident(blk)
    # Prefetch pays no per-page fault tax.
    assert end == pytest.approx(link.transfer_time(UM_BLOCK_SIZE))


def test_prefetch_declines_when_full():
    um, gpu, link, handler = make_handler(capacity_blocks=1)
    handler.resolve_block_fault(full_block(um, 0), 0.0, 512)
    assert handler.prefetch_block(full_block(um, 1), 0.0) is None


def test_prefetch_resident_is_instant():
    um, gpu, link, handler = make_handler()
    blk = full_block(um, 0)
    handler.prefetch_block(blk, 0.0)
    assert handler.prefetch_block(blk, 5.0) == 5.0


def test_prefetch_unpopulated_admits_for_free():
    um, gpu, link, handler = make_handler()
    blk = full_block(um, 0, on_cpu=False)
    end = handler.prefetch_block(blk, earliest=3.0)
    assert end == 3.0
    assert gpu.is_resident(blk)
    assert link.bytes_to_gpu == 0


def test_make_room_raises_without_victims():
    um, gpu, link, handler = make_handler(capacity_blocks=1)

    class NoVictims:
        def select_victims(self, gpu, needed, now):
            return []

    handler.eviction_policy = NoVictims()
    handler.resolve_block_fault(full_block(um, 0), 0.0, 512)
    with pytest.raises(RuntimeError):
        handler.resolve_block_fault(full_block(um, 1), 1.0, 512)


def test_lru_migrated_policy_orders_by_migration():
    um, gpu, link, handler = make_handler(capacity_blocks=3)
    blocks = [full_block(um, i) for i in range(3)]
    for i, blk in enumerate(blocks):
        handler.resolve_block_fault(blk, float(i), 512)
    victims = LRUMigratedPolicy().select_victims(gpu, UM_BLOCK_SIZE, now=5.0)
    assert victims[0] is blocks[0]
