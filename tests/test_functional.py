"""Functional ops: shapes, FLOPs, kernel emission, backward structure."""

import pytest

from repro.torchsim import functional as F
from repro.torchsim.autograd import Tape
from repro.torchsim.dtypes import int64, uint8


@pytest.fixture
def tape(sim_device):
    return Tape(device=sim_device)


def last_launch(device, name=None):
    launches = device.manager.launches
    if name is None:
        return launches[-1]
    return next(l for l in reversed(launches) if l.name == name)


def test_linear_shapes_and_flops(tape, sim_device):
    x = sim_device.empty((3, 4, 16))
    w = sim_device.empty((32, 16), persistent=True)
    y = F.linear(tape, x, w)
    assert y.shape == (3, 4, 32)
    k = last_launch(sim_device, "sgemm")
    assert k.flops == 2.0 * 12 * 16 * 32


def test_linear_shape_mismatch(tape, sim_device):
    with pytest.raises(ValueError):
        F.linear(tape, sim_device.empty((2, 8)), sim_device.empty((4, 16)))


def test_matmul_batched(tape, sim_device):
    a = sim_device.empty((6, 10, 8))
    b = sim_device.empty((6, 8, 12))
    y = F.matmul(tape, a, b)
    assert y.shape == (6, 10, 12)
    assert last_launch(sim_device, "bmm").flops == 2.0 * 6 * 10 * 8 * 12


def test_matmul_dim_checks(tape, sim_device):
    with pytest.raises(ValueError):
        F.matmul(tape, sim_device.empty((2, 3, 4)), sim_device.empty((2, 5, 6)))
    with pytest.raises(ValueError):
        F.matmul(tape, sim_device.empty((2, 3, 4)), sim_device.empty((3, 4, 6)))


def test_conv2d_output_shape(tape, sim_device):
    x = sim_device.empty((2, 3, 32, 32))
    w = sim_device.empty((8, 3, 3, 3), persistent=True)
    y = F.conv2d(tape, x, w, stride=1, padding=1)
    assert y.shape == (2, 8, 32, 32)


def test_conv2d_strided(tape, sim_device):
    x = sim_device.empty((1, 4, 16, 16))
    w = sim_device.empty((4, 4, 3, 3), persistent=True)
    y = F.conv2d(tape, x, w, stride=2, padding=1)
    assert y.shape == (1, 4, 8, 8)


def test_conv2d_grouped_flops(tape, sim_device):
    x = sim_device.empty((1, 8, 8, 8))
    w_dense = sim_device.empty((8, 8, 3, 3), persistent=True)
    F.conv2d(tape, x, w_dense, padding=1)
    dense = last_launch(sim_device, "conv2d_fwd").flops
    w_dw = sim_device.empty((8, 1, 3, 3), persistent=True)
    F.conv2d(tape, x, w_dw, padding=1, groups=8)
    depthwise = last_launch(sim_device, "conv2d_fwd").flops
    assert depthwise == dense / 8


def test_conv2d_collapsed_output_raises(tape, sim_device):
    x = sim_device.empty((1, 1, 2, 2))
    w = sim_device.empty((1, 1, 5, 5), persistent=True)
    with pytest.raises(ValueError):
        F.conv2d(tape, x, w)


def test_conv_transpose2d_upsamples(tape, sim_device):
    x = sim_device.empty((2, 16, 8, 8))
    w = sim_device.empty((16, 8, 4, 4), persistent=True)
    y = F.conv_transpose2d(tape, x, w, stride=2, padding=1)
    assert y.shape == (2, 8, 16, 16)


def test_norms_save_stats(tape, sim_device):
    x = sim_device.empty((2, 4, 8, 8))
    g = sim_device.empty((4,), persistent=True)
    b = sim_device.empty((4,), persistent=True)
    y = F.batch_norm2d(tape, x, g, b)
    assert y.shape == x.shape
    k = last_launch(sim_device, "batch_norm_fwd")
    assert len(k.writes) == 2  # output + saved statistics


def test_layer_norm_shape(tape, sim_device):
    x = sim_device.empty((2, 6, 32))
    g = sim_device.empty((32,), persistent=True)
    b = sim_device.empty((32,), persistent=True)
    assert F.layer_norm(tape, x, g, b).shape == x.shape


def test_softmax_saves_output_for_backward(tape, sim_device):
    x = sim_device.empty((2, 8))
    y = F.softmax(tape, x)
    entry = tape.entries[-1]
    assert entry.saved == (y,)


def test_dropout_allocates_byte_mask(tape, sim_device):
    x = sim_device.empty((4, 16))
    F.dropout(tape, x, 0.1)
    k = last_launch(sim_device, "dropout_fwd")
    mask = k.writes[1]
    assert mask.dtype is uint8
    assert mask.nbytes == x.numel


def test_add_requires_same_shape(tape, sim_device):
    with pytest.raises(ValueError):
        F.add(tape, sim_device.empty((2, 2)), sim_device.empty((2, 3)))


def test_max_pool_shapes_and_indices(tape, sim_device):
    x = sim_device.empty((1, 2, 8, 8))
    y = F.max_pool2d(tape, x, kernel=2, stride=2)
    assert y.shape == (1, 2, 4, 4)
    k = last_launch(sim_device, "max_pool2d_fwd")
    assert k.writes[1].dtype is int64


def test_global_avg_pool(tape, sim_device):
    x = sim_device.empty((3, 7, 4, 4))
    assert F.global_avg_pool2d(tape, x).shape == (3, 7)


def test_embedding_output_shape(tape, sim_device):
    table = sim_device.empty((100, 16), persistent=True)
    idx = sim_device.empty((2, 5), int64, persistent=True)
    assert F.embedding(tape, table, idx).shape == (2, 5, 16)


def test_embedding_bag_is_sparse_both_ways(tape, sim_device):
    table = sim_device.empty((1000, 16), persistent=True)
    idx = sim_device.empty((8,), int64, persistent=True)
    y = F.embedding_bag(tape, table, idx, coverage=0.3)
    assert y.shape == (8, 16)
    fwd = last_launch(sim_device, "embedding_bag_fwd")
    assert fwd.sparse is not None and fwd.sparse.coverage == 0.3
    tape.backward(F.mse_loss(tape, y, sim_device.empty((8, 16), persistent=True)))
    bwd = last_launch(sim_device, "embedding_bag_bwd")
    assert bwd.sparse is not None
    assert table in bwd.writes  # fused in-place sparse update


def test_cross_entropy_scalar_loss(tape, sim_device):
    logits = sim_device.empty((4, 10))
    t = sim_device.empty((4,), int64, persistent=True)
    loss = F.cross_entropy(tape, logits, t)
    assert loss.shape == (1,)


def test_concat_features(tape, sim_device):
    parts = [sim_device.empty((4, 3)), sim_device.empty((4, 5))]
    y = F.concat_features(tape, parts)
    assert y.shape == (4, 8)


def test_concat_features_batch_mismatch(tape, sim_device):
    with pytest.raises(ValueError):
        F.concat_features(tape, [sim_device.empty((4, 3)),
                                 sim_device.empty((5, 3))])


def test_unary_backward_round_trip(tape, sim_device):
    for op, bwd in [(F.relu, "relu_bwd"), (F.gelu, "gelu_bwd"),
                    (F.tanh, "tanh_bwd"), (F.sigmoid, "sigmoid_bwd"),
                    (F.leaky_relu, "leaky_relu_bwd")]:
        t2 = Tape(device=sim_device)
        x = sim_device.empty((4, 4))
        y = op(t2, x)
        t2.backward(F.mse_loss(t2, y, sim_device.empty((4, 4), persistent=True)))
        assert any(l.name == bwd for l in sim_device.manager.launches)
