"""GPU residency bookkeeping and migration-order LRU."""

import pytest

from repro.constants import UM_BLOCK_SIZE
from repro.sim.gpu import GPUMemory, GPUOutOfMemory
from repro.sim.um_space import BlockLocation, UnifiedMemorySpace


@pytest.fixture
def gpu():
    return GPUMemory(capacity_bytes=4 * UM_BLOCK_SIZE)


def _full_block(um, idx):
    blk = um.block(idx)
    blk.populate(512)
    return blk


def test_admit_tracks_usage(gpu):
    um = UnifiedMemorySpace()
    blk = _full_block(um, 0)
    gpu.admit(blk, now=1.0)
    assert gpu.is_resident(blk)
    assert gpu.used_bytes == UM_BLOCK_SIZE
    assert blk.location is BlockLocation.GPU
    assert blk.last_migrated_at == 1.0


def test_admit_is_idempotent(gpu):
    um = UnifiedMemorySpace()
    blk = _full_block(um, 0)
    gpu.admit(blk, now=1.0)
    gpu.admit(blk, now=2.0)
    assert gpu.used_bytes == UM_BLOCK_SIZE


def test_admit_overflow_raises(gpu):
    um = UnifiedMemorySpace()
    for i in range(4):
        gpu.admit(_full_block(um, i), now=float(i))
    with pytest.raises(GPUOutOfMemory):
        gpu.admit(_full_block(um, 4), now=5.0)


def test_remove_to_cpu(gpu):
    um = UnifiedMemorySpace()
    blk = _full_block(um, 0)
    gpu.admit(blk, now=0.0)
    gpu.remove(blk, to_cpu=True)
    assert not gpu.is_resident(blk)
    assert gpu.used_bytes == 0
    assert blk.location is BlockLocation.CPU


def test_remove_invalidated_keeps_backing_pages(gpu):
    """Invalidation drops data but keeps the reservation: the next GPU
    touch repopulates on-device with no transfer."""
    um = UnifiedMemorySpace()
    blk = _full_block(um, 0)
    gpu.admit(blk, now=0.0)
    gpu.remove(blk, to_cpu=False)
    assert blk.location is BlockLocation.UNPOPULATED
    assert blk.populated_pages == 512


def test_remove_nonresident_is_noop(gpu):
    um = UnifiedMemorySpace()
    blk = _full_block(um, 0)
    gpu.remove(blk)
    assert gpu.used_bytes == 0


def test_migration_order_is_fifo_of_admission(gpu):
    um = UnifiedMemorySpace()
    blocks = [_full_block(um, i) for i in range(4)]
    for i, blk in enumerate(blocks):
        gpu.admit(blk, now=float(i))
    assert [b.index for b in gpu.migration_order()] == [0, 1, 2, 3]
    assert gpu.oldest() is blocks[0]


def test_readmission_refreshes_migration_order(gpu):
    um = UnifiedMemorySpace()
    blocks = [_full_block(um, i) for i in range(3)]
    for i, blk in enumerate(blocks):
        gpu.admit(blk, now=float(i))
    gpu.remove(blocks[0])
    gpu.admit(blocks[0], now=10.0)
    assert [b.index for b in gpu.migration_order()] == [1, 2, 0]


def test_has_room_for(gpu):
    um = UnifiedMemorySpace()
    for i in range(3):
        gpu.admit(_full_block(um, i), now=0.0)
    assert gpu.has_room_for(_full_block(um, 10))
    gpu.admit(_full_block(um, 3), now=0.0)
    assert not gpu.has_room_for(_full_block(um, 11))


def test_oldest_empty_is_none(gpu):
    assert gpu.oldest() is None
