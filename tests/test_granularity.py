"""UM management-granularity parameterization (ablation support)."""

import pytest

from repro.config import DeepUMConfig
from repro.constants import KiB, MiB, PAGE_SIZE
from repro.core.deepum import DeepUM
from repro.sim.um_space import UnifiedMemorySpace

from workloads import make_mlp_workload


def test_block_size_must_be_page_multiple():
    with pytest.raises(ValueError):
        UnifiedMemorySpace(block_size=PAGE_SIZE + 1)
    with pytest.raises(ValueError):
        UnifiedMemorySpace(block_size=0)


def test_pages_per_block_follows_size():
    um = UnifiedMemorySpace(block_size=256 * KiB)
    assert um.pages_per_block == 64
    blk = um.block(0)
    blk.populate(1000)
    assert blk.populated_pages == 64  # clamped at the block's capacity


def test_blocks_spanned_uses_granularity():
    um = UnifiedMemorySpace(block_size=256 * KiB)
    assert len(list(um.blocks_spanned(0, 1 * MiB))) == 4
    um2 = UnifiedMemorySpace(block_size=2 * MiB)
    assert len(list(um2.blocks_spanned(0, 1 * MiB))) == 1


def run_deepum(tiny_system, block_size):
    deepum = DeepUM(tiny_system, DeepUMConfig(prefetch_degree=8),
                    block_size=block_size)
    step, _, _ = make_mlp_workload(deepum.device, layers_n=8, dim=1024,
                                   batch=256)
    for _ in range(4):
        step()
    return deepum


def test_finer_granularity_more_fault_events(tiny_system):
    fine = run_deepum(tiny_system, 512 * KiB)
    coarse = run_deepum(tiny_system, 2 * MiB)
    assert fine.engine.stats.faulted_blocks > coarse.engine.stats.faulted_blocks


def test_page_fault_totals_comparable_across_granularity(tiny_system):
    """Fault *events* differ with granularity, but the page volume the
    workload demands is the same order either way."""
    fine = run_deepum(tiny_system, 512 * KiB)
    coarse = run_deepum(tiny_system, 2 * MiB)
    ratio = fine.page_faults / max(1, coarse.page_faults)
    assert 0.2 < ratio < 5.0
