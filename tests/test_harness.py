"""Experiment harness: calibration, runs, OOM handling, max-batch search."""

import pytest

from repro.config import DeepUMConfig, GPUSpec, HostSpec, SystemConfig
from repro.constants import GiB, MiB
from repro.harness import (
    POLICIES,
    calibrate_system,
    build_policy,
    max_batch_search,
    run_experiment,
)
from repro.harness.experiment import measure_footprint

TINY = 0.0625


def test_policy_registry_complete():
    for name in ["um", "deepum", "ideal", "lms", "lms-mod", "vdnn", "autotm",
                 "swapadvisor", "capuchin", "sentinel"]:
        assert name in POLICIES


def test_build_policy_unknown_raises():
    with pytest.raises(KeyError):
        build_policy("magic", SystemConfig())


def test_measure_footprint_positive():
    fp = measure_footprint("bert-base", 4, scale=TINY)
    assert fp > 10 * MiB


def test_calibrate_targets_oversubscription():
    system = calibrate_system("bert-base", scale=TINY, mid_batch=8,
                              oversubscription=1.0)
    fp = measure_footprint("bert-base", 8, scale=TINY)
    assert system.gpu.memory_bytes == pytest.approx(fp, rel=0.01)
    assert system.host.memory_bytes == 16 * system.gpu.memory_bytes


def test_calibrate_enforces_minimum_gpu():
    system = calibrate_system("bert-base", scale=TINY, mid_batch=8,
                              oversubscription=1000.0)
    assert system.gpu.memory_bytes == 16 * MiB


def test_calibrate_scales_gpu_throughput():
    system = calibrate_system("bert-base", scale=TINY, mid_batch=8)
    assert system.gpu.flops_per_second < GPUSpec().flops_per_second


def test_calibration_cached():
    a = calibrate_system("bert-base", scale=TINY, mid_batch=8)
    b = calibrate_system("bert-base", scale=TINY, mid_batch=8)
    assert a is b


def test_run_experiment_produces_window():
    system = calibrate_system("bert-base", scale=TINY, mid_batch=8)
    result = run_experiment("bert-base", 8, "um", scale=TINY, system=system,
                            warmup_iterations=2, measure_iterations=2)
    assert not result.oom
    assert result.window is not None
    assert result.seconds_per_100_iterations > 0
    assert result.window.energy_joules > 0


def test_run_experiment_deepum_config_respected():
    system = calibrate_system("bert-base", scale=TINY, mid_batch=8)
    result = run_experiment(
        "bert-base", 8, "deepum", scale=TINY, system=system,
        warmup_iterations=2, measure_iterations=2,
        deepum_config=DeepUMConfig(prefetch_degree=2),
    )
    assert not result.oom


def test_run_experiment_reports_oom():
    starved = SystemConfig(
        gpu=GPUSpec(memory_bytes=16 * MiB),
        host=HostSpec(memory_bytes=12 * MiB),
    )
    result = run_experiment("bert-base", 8, "um", scale=TINY, system=starved)
    assert result.oom
    assert "UMCapacityError" in result.oom_reason
    assert result.seconds_per_100_iterations is None


def test_max_batch_search_deepum_exceeds_lms():
    """Table 3's headline: DeepUM (host-bound) runs much larger batches
    than LMS (device/fragmentation-bound)."""
    system = SystemConfig(
        gpu=GPUSpec(memory_bytes=96 * MiB),
        host=HostSpec(memory_bytes=1 * GiB),
    )
    lms_max = max_batch_search("bert-base", "lms", system, scale=TINY,
                               start_batch=2)
    deepum_max = max_batch_search("bert-base", "deepum", system, scale=TINY,
                                  start_batch=2)
    assert deepum_max > lms_max > 0


def test_max_batch_search_returns_zero_when_nothing_fits():
    system = SystemConfig(
        gpu=GPUSpec(memory_bytes=16 * MiB),
        host=HostSpec(memory_bytes=8 * MiB),
    )
    assert max_batch_search("bert-base", "um", system, scale=TINY,
                            start_batch=2) == 0
