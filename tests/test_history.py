"""Bench history: distilled per-commit records and their trend views.

The history file is committed JSONL, so the tests pin the properties a
committed artifact needs: append never rewrites, loading tolerates a
corrupt line (skip and count, never fatal), and every record validates
against the history schema before it is written.
"""

import json

import pytest

from repro.bench import SCENARIOS, write_result
from repro.bench.schema import make_result
from repro.cli import main
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    HistoryError,
    append_entry,
    current_git_sha,
    format_history,
    format_trend,
    load_history,
    make_entry,
    trend,
    validate_entry,
)

TINY = SCENARIOS["smoke"]


def _result(wall=0.5, elapsed=1.5, breakdown=None):
    sim = {
        "elapsed": elapsed,
        "page_faults": 42,
        "prefetch_coverage": 0.9,
        "bytes_in": 1048576,
        "bytes_out": 4096,
        "peak_populated_bytes": 123456,
    }
    cell = {
        "wall_seconds": wall,
        "wall_seconds_all": [wall, wall * 1.1],
        "sim": sim,
    }
    if breakdown is not None:
        cell["wall_breakdown"] = breakdown
    return make_result(
        "smoke", TINY.config_dict(), repeats=2, warmup_runs=1,
        cells={"mobilenet@3072/um": cell}, peak_rss_bytes=1024,
    )


def _entry(wall=0.5, sha="abc1234", at="2026-08-08T00:00:00+00:00",
           **kwargs):
    return make_entry(_result(wall=wall, **kwargs), git_sha=sha,
                      recorded_at=at)


# ------------------------------------------------------------ make_entry

def test_make_entry_distills_cells():
    entry = _entry(breakdown={"warmup": 0.2, "timed": 0.3})
    assert entry["history_schema_version"] == HISTORY_SCHEMA_VERSION
    assert entry["git_sha"] == "abc1234"
    assert entry["scenario"] == "smoke"
    cell = entry["cells"]["mobilenet@3072/um"]
    assert cell["wall_seconds"] == 0.5
    assert cell["sim"]["elapsed"] == 1.5
    assert cell["wall_breakdown"] == {"warmup": 0.2, "timed": 0.3}


def test_make_entry_defaults_sha_and_timestamp():
    entry = make_entry(_result())
    assert entry["git_sha"]  # this test runs inside a git checkout
    assert entry["recorded_at"]
    assert validate_entry(entry) is entry


def test_make_entry_accepts_compare_dict():
    entry = make_entry(
        _result(), git_sha="s", recorded_at="t",
        compare={"ok": False, "regressions": 2, "sim_mismatches": 1})
    assert entry["compare"] == {
        "ok": False, "regressions": 2, "sim_mismatches": 1}


def test_current_git_sha_falls_back_outside_a_checkout(tmp_path):
    assert current_git_sha() != "unknown"
    assert current_git_sha(cwd=str(tmp_path)) == "unknown"


def test_validate_entry_rejects_bad_records():
    good = _entry()

    def corrupt(mutate):
        clone = json.loads(json.dumps(good))
        mutate(clone)
        return clone

    bad = [
        corrupt(lambda e: e.update(history_schema_version=99)),
        corrupt(lambda e: e.update(git_sha="")),
        corrupt(lambda e: e.update(cells={})),
        corrupt(lambda e: e["cells"]["mobilenet@3072/um"].update(
            wall_seconds=-1.0)),
        corrupt(lambda e: e["cells"]["mobilenet@3072/um"]["sim"].pop(
            "elapsed")),
        corrupt(lambda e: e["cells"]["mobilenet@3072/um"].update(
            wall_breakdown={"timed": -0.1})),
        corrupt(lambda e: e.update(compare={"regressions": 1})),
        "not a dict",
    ]
    for entry in bad:
        with pytest.raises(HistoryError):
            validate_entry(entry)


# ---------------------------------------------------- append/load/trend

def test_append_load_round_trip(tmp_path):
    path = str(tmp_path / "nested" / "history.jsonl")
    first = _entry(wall=0.5, sha="aaa1111", at="2026-08-07T00:00:00+00:00")
    second = _entry(wall=0.6, sha="bbb2222", at="2026-08-08T00:00:00+00:00")
    append_entry(first, path)
    append_entry(second, path)
    entries, skipped = load_history(path)
    assert entries == [first, second]  # oldest first, bit-identical
    assert skipped == 0


def test_load_missing_file_is_empty_history(tmp_path):
    assert load_history(str(tmp_path / "nope.jsonl")) == ([], 0)


def test_load_skips_malformed_lines(tmp_path):
    path = tmp_path / "history.jsonl"
    good = _entry()
    path.write_text(
        json.dumps(good) + "\n"
        + "{broken json\n"
        + json.dumps({"history_schema_version": 99}) + "\n"
        + "\n"  # blank lines are not an error
        + json.dumps(good) + "\n")
    entries, skipped = load_history(str(path))
    assert len(entries) == 2
    assert skipped == 2


def test_append_refuses_invalid_entries(tmp_path):
    path = tmp_path / "history.jsonl"
    with pytest.raises(HistoryError):
        append_entry({"history_schema_version": 99}, str(path))
    assert not path.exists()  # nothing half-written


def test_load_filters_by_scenario(tmp_path):
    path = str(tmp_path / "history.jsonl")
    entry = _entry()
    append_entry(entry, path)
    assert load_history(path, scenario="smoke")[0] == [entry]
    assert load_history(path, scenario="other")[0] == []


def test_trend_builds_per_cell_series():
    entries = [
        _entry(wall=0.5, sha="aaa1111", at="t1"),
        _entry(wall=1.0, sha="bbb2222", at="t2"),
    ]
    series = trend(entries, "smoke")
    points = series["mobilenet@3072/um"]
    assert [p["git_sha"] for p in points] == ["aaa1111", "bbb2222"]
    assert [p["wall_seconds"] for p in points] == [0.5, 1.0]
    assert points[0]["sim_elapsed"] == 1.5
    assert trend(entries, "other") == {}


def test_format_history_and_trend_render():
    entries = [_entry(wall=0.5, sha="aaa1111", at="t1"),
               _entry(wall=1.0, sha="bbb2222", at="t2")]
    listing = format_history(entries, skipped=1, last=1)
    assert "bbb2222" in listing and "aaa1111" not in listing  # last=1
    assert "skipped 1 malformed" in listing
    rendered = format_trend(trend(entries, "smoke"), "smoke")
    assert "2.00x" in rendered  # 1.0s vs 0.5s against the previous record
    assert "=" in rendered  # sim elapsed unchanged between records
    assert format_trend({}, "smoke").startswith("no history recorded")


# ------------------------------------------------------------------ CLI

def test_cli_history_record_show_trend(tmp_path, capsys):
    result_path = str(tmp_path / "BENCH_smoke.json")
    write_result(_result(), result_path)
    history_path = str(tmp_path / "history.jsonl")

    assert main(["bench", "history", "record", result_path,
                 "--path", history_path, "--sha", "abc1234"]) == 0
    out = capsys.readouterr().out
    assert "recorded smoke @ abc1234" in out

    assert main(["bench", "history", "show", "--path", history_path]) == 0
    out = capsys.readouterr().out
    assert "abc1234" in out and "smoke" in out

    assert main(["bench", "history", "trend", "--scenario", "smoke",
                 "--path", history_path]) == 0
    out = capsys.readouterr().out
    assert "smoke / mobilenet@3072/um" in out


def test_cli_history_record_with_baseline_compare(tmp_path, capsys):
    baseline_path = str(tmp_path / "BENCH_baseline.json")
    result_path = str(tmp_path / "BENCH_smoke.json")
    write_result(_result(wall=0.5), baseline_path)
    write_result(_result(wall=0.6), result_path)
    history_path = str(tmp_path / "history.jsonl")

    assert main(["bench", "history", "record", result_path,
                 "--baseline", baseline_path,
                 "--path", history_path, "--sha", "abc1234"]) == 0
    assert "(compare: ok)" in capsys.readouterr().out
    entries, _ = load_history(history_path)
    assert entries[0]["compare"]["ok"] is True


def test_cli_history_record_rejects_missing_result(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench", "history", "record",
              str(tmp_path / "nope.json"),
              "--path", str(tmp_path / "history.jsonl")])
