"""Single-file HTML report: document build, offline rendering, CLI wiring."""

import re

import pytest

from repro.cli import main
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    ReportOfflineError,
    assert_offline,
    journal_report,
    render_html,
    scenario_report,
    write_report,
)


@pytest.fixture(scope="module")
def smoke_doc():
    return scenario_report("smoke", warmup_iterations=1, measure_iterations=1)


# ------------------------------------------------------------- documents


def test_scenario_report_document(smoke_doc):
    doc = smoke_doc
    assert doc["report_schema_version"] == REPORT_SCHEMA_VERSION
    assert doc["kind"] == "scenario" and doc["scenario"] == "smoke"
    cells = doc["cells"]
    assert set(cells) == {"mobilenet@3072/um", "mobilenet@3072/deepum"}
    for body in cells.values():
        assert body["seconds_per_100_iterations"] > 0
        mem = body["memory"]
        assert mem["capacity_bytes"] > 0
        assert mem["oversubscription"] > 1.0
        assert mem["occupancy"][0] == [0.0, 0]
        assert body["kernels"] and body["policy_health"]["kernels"] > 0
        codes = {f["code"] for f in body["findings"]}
        assert "oversubscription-pressure" in codes
    # The A/B diff is embedded, um as A and deepum as B.
    assert doc["diff_pair"] == ["mobilenet@3072/um", "mobilenet@3072/deepum"]
    diff = doc["diff"]
    assert diff["label_a"] == "um" and diff["label_b"] == "deepum"
    assert diff["matched"] > 0


def test_scenario_report_renders_offline(smoke_doc, tmp_path):
    out = tmp_path / "report.html"
    html = write_report(smoke_doc, str(out))
    assert out.read_text() == html
    assert_offline(html)  # re-check what landed on disk
    assert html.startswith("<!DOCTYPE html>")
    assert "mobilenet@3072/um" in html and "mobilenet@3072/deepum" in html
    assert "<svg" in html  # occupancy + kernel timelines
    assert "A/B diff: deepum vs um" in html
    assert "thrash score" in html
    assert "oversubscription-pressure" in html


def test_unknown_scenario_and_kind_raise():
    with pytest.raises(KeyError, match="unknown scenario"):
        scenario_report("no-such-scenario")
    with pytest.raises(ValueError, match="unknown report kind"):
        render_html({"kind": "nope"})


# --------------------------------------------------------------- offline


def test_assert_offline_rejects_external_references():
    for bad in (
        "<img src=\"https://cdn.example.com/x.png\">",
        "<script src=\"app.js\"></script>",
        "<link rel=\"stylesheet\" href=\"style.css\">",
        "<style>body { background: url(remote.png); }</style>",
        "<a href=\"mailto:x@example.com\">x</a>",
    ):
        with pytest.raises(ReportOfflineError):
            assert_offline(f"<html>{bad}</html>")
    # Fragment and data: targets are the only allowed link forms.
    assert_offline("<a href=\"#section\">ok</a>"
                   "<img src=\"data:image/png;base64,AAAA\">")


# --------------------------------------------------- journal mode + CLI


def _make_run(tmp_path, capsys):
    assert main(["run", "mobilenet", "--batch", "64",
                 "--policies", "um,deepum", "--warmup", "1", "--measure", "1",
                 "--workers", "2", "--runs-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == 0
    match = re.search(r"(\d{8}-\d{6}-[0-9a-f]{6})", capsys.readouterr().out)
    assert match
    return match.group(1)


def test_journal_report_and_runs_show(tmp_path, capsys):
    from repro.exec import RunJournal

    run_id = _make_run(tmp_path, capsys)
    journal = RunJournal.load(run_id, str(tmp_path))
    doc = journal_report(journal)
    assert doc["kind"] == "run" and doc["run_id"] == run_id
    assert len(doc["cells"]) == 2
    for cell in doc["cells"]:
        assert cell["status"] == "ok"
        assert cell["wall_seconds"] > 0
        assert cell["attempts"] >= 1
    html = render_html(doc)
    assert run_id in html and "wall (s)" in html and "retries" in html

    # `runs show` surfaces the same per-cell wall time and retry count.
    assert main(["runs", "show", run_id, "--runs-dir", str(tmp_path)]) == 0
    shown = capsys.readouterr().out
    assert "wall (s)" in shown and "retries" in shown

    # journal mode through the CLI writes the same offline artifact.
    out = tmp_path / "run-report.html"
    assert main(["report", "--run", run_id, "--runs-dir", str(tmp_path),
                 "--out", str(out)]) == 0
    html2 = out.read_text()
    assert_offline(html2)
    assert run_id in html2


def test_report_cli_requires_exactly_one_source(tmp_path):
    with pytest.raises(SystemExit, match="exactly one"):
        main(["report"])
    with pytest.raises(SystemExit, match="exactly one"):
        main(["report", "smoke", "--run", "x",
              "--runs-dir", str(tmp_path)])
    with pytest.raises(SystemExit, match="unknown scenario"):
        main(["report", "definitely-not-a-scenario",
              "--out", str(tmp_path / "r.html")])
