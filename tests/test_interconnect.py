"""PCIe link occupancy, serialization, and the demand-fault page tax."""

import pytest

from repro.sim.interconnect import PCIeLink


@pytest.fixture
def link():
    return PCIeLink(bandwidth=10e9, latency=10e-6, page_overhead=1e-6)


def test_transfer_time_latency_plus_serialization(link):
    assert link.transfer_time(10e9) == pytest.approx(1.0 + 10e-6)


def test_transfer_time_zero_bytes_is_free(link):
    assert link.transfer_time(0) == 0.0


def test_faulted_pages_add_overhead(link):
    base = link.transfer_time(1 << 20)
    taxed = link.transfer_time(1 << 20, faulted_pages=256)
    assert taxed == pytest.approx(base + 256e-6)


def test_occupy_serializes_transfers(link):
    s1, e1 = link.occupy(0.0, 10e9, to_gpu=True)
    s2, e2 = link.occupy(0.0, 10e9, to_gpu=False)
    assert s1 == 0.0
    assert s2 == pytest.approx(e1)
    assert e2 > e1


def test_occupy_waits_for_earliest(link):
    start, end = link.occupy(5.0, 10e9, to_gpu=True)
    assert start == 5.0


def test_occupy_accounts_direction(link):
    link.occupy(0.0, 1000, to_gpu=True)
    link.occupy(0.0, 2000, to_gpu=False)
    assert link.bytes_to_gpu == 1000
    assert link.bytes_to_cpu == 2000


def test_busy_time_accumulates(link):
    link.occupy(0.0, 10e9, to_gpu=True)
    link.occupy(0.0, 10e9, to_gpu=True)
    assert link.busy_time == pytest.approx(2.0 + 20e-6)


def test_idle_until(link):
    assert link.idle_until(0.0)
    link.occupy(0.0, 10e9, to_gpu=True)
    assert not link.idle_until(0.5)
    assert link.idle_until(2.0)


def test_faulted_pages_counter(link):
    link.occupy(0.0, 4096, to_gpu=True, faulted_pages=1)
    link.occupy(0.0, 4096, to_gpu=True, faulted_pages=3)
    assert link.faulted_pages == 4
