"""Kernel launch records and the roofline cost model."""

import pytest

from repro.config import GPUSpec
from repro.torchsim.kernels import KernelCostModel, KernelLaunch, SparseAccess


def launch(sim_device, name="k", flops=1e6, sparse=None, n_reads=2):
    reads = [sim_device.empty((256, 256)) for _ in range(n_reads)]
    writes = [sim_device.empty((256, 256))]
    return KernelLaunch(name=name, arg_signature=(1,), reads=reads,
                        writes=writes, flops=flops, sparse=sparse)


def test_exec_signature_combines_name_and_args(sim_device):
    k = launch(sim_device)
    assert k.exec_signature == ("k", (1,))


def test_operands_dedup_preserving_order(sim_device):
    t = sim_device.empty((4,))
    k = KernelLaunch("k", (), reads=[t, t], writes=[t], flops=1.0)
    assert k.operands == [t]


def test_bytes_accessed_sums_operands(sim_device):
    k = launch(sim_device)
    assert k.bytes_accessed == 3 * 256 * 256 * 4


def test_sparse_access_scales_bytes(sim_device):
    k = launch(sim_device, sparse=SparseAccess(tensor_index=0, coverage=0.5))
    full = 3 * 256 * 256 * 4
    assert k.bytes_accessed == full - (256 * 256 * 4) // 2


def test_sparse_coverage_validation():
    with pytest.raises(ValueError):
        SparseAccess(tensor_index=0, coverage=0.0)
    with pytest.raises(ValueError):
        SparseAccess(tensor_index=0, coverage=1.5)


def test_seq_monotonic(sim_device):
    a = launch(sim_device)
    b = launch(sim_device)
    assert b.seq > a.seq


def test_cost_model_compute_bound(sim_device):
    gpu = GPUSpec(flops_per_second=1e12, compute_efficiency=1.0,
                  hbm_bandwidth=1e12)
    model = KernelCostModel(gpu)
    k = launch(sim_device, flops=1e9)  # 1 ms compute vs ~0.8 us memory
    assert model.compute_time(k) == pytest.approx(1e-3)


def test_cost_model_memory_bound(sim_device):
    gpu = GPUSpec(flops_per_second=1e15, compute_efficiency=1.0,
                  hbm_bandwidth=1e9)
    model = KernelCostModel(gpu)
    k = launch(sim_device, flops=1.0)
    assert model.compute_time(k) == pytest.approx(k.bytes_accessed / 1e9)


def test_cost_scales_with_efficiency(sim_device):
    fast = KernelCostModel(GPUSpec(compute_efficiency=1.0))
    slow = KernelCostModel(GPUSpec(compute_efficiency=0.5))
    k = launch(sim_device, flops=1e14)
    assert slow.compute_time(k) == pytest.approx(2 * fast.compute_time(k))
