"""Memory-pressure timeline: derivation, reconciliation, and neutrality.

The timeline is replayed offline from ``TRACK_MEMORY`` instants and must
reconcile against the simulator's own ``GPUMemory.used_bytes`` after every
residency change — these tests cover that invariant on real oversubscribed
runs (um and deepum), prove the reconciliation actually *fails* on
tampered or incomplete event streams, and re-check that turning the
instrumentation on changes no timed simulated metric.
"""

from types import SimpleNamespace

import pytest

from repro.harness import calibrate_system, run_experiment
from repro.obs import SpanRecorder
from repro.obs.memory import (
    MemoryReconciliationError,
    MemoryTimeline,
    memory_timeline,
)
from repro.obs.recorder import Instant, TRACK_MEMORY


def _recorded_run(policy, warmup=1, measure=2):
    system = calibrate_system("mobilenet")
    rec = SpanRecorder()
    result = run_experiment("mobilenet", 3072, policy, system=system,
                            warmup_iterations=warmup,
                            measure_iterations=measure, recorder=rec)
    assert not result.oom
    return rec, result, system.gpu.memory_bytes


def _fake_recorder(instants, kernels=()):
    return SimpleNamespace(instants=list(instants), kernels=list(kernels))


def _admit(block, nbytes, used, t=0.0, reason="fault"):
    return Instant(TRACK_MEMORY, "mem.admit", t,
                   args={"block": block, "bytes": nbytes, "reason": reason,
                         "used": used})


def _evict(block, nbytes, used, t=0.0, reason="writeback", trigger="fault"):
    return Instant(TRACK_MEMORY, "mem.evict", t,
                   args={"block": block, "bytes": nbytes, "reason": reason,
                         "trigger": trigger, "used": used})


def _grow(block, nbytes, used, t=0.0):
    return Instant(TRACK_MEMORY, "mem.grow", t,
                   args={"block": block, "bytes": nbytes, "used": used})


# ---------------------------------------------------------------- real runs


@pytest.mark.parametrize("policy", ["um", "deepum"])
def test_timeline_reconciles_on_oversubscribed_run(policy):
    rec, result, capacity = _recorded_run(policy)
    tl = memory_timeline(rec, capacity)  # raises on any mismatch

    # Final derived occupancy equals the simulator's live accounting.
    gpu = result.facade.engine.gpu
    assert tl.occupancy[-1][1] == gpu.used_bytes

    # The smoke model oversubscribes: the working set exceeds capacity,
    # occupancy peaks at (or, via in-place growth, marginally past) it.
    assert tl.oversubscription > 1.0
    assert tl.peak_used_bytes <= capacity + tl.over_capacity_bytes
    assert tl.admits > 0 and tl.evicts > 0
    assert tl.thrash_score > 0.0

    # Split totals are self-consistent.
    assert tl.admits == sum(tl.admits_by_reason.values())
    assert tl.evicts == sum(tl.evicts_by_trigger.values())
    assert tl.evicts == sum(tl.evicts_by_reason.values())
    assert tl.evicted_bytes == sum(tl.evicted_bytes_by_trigger.values())

    # Open intervals are exactly the blocks still resident at the end.
    open_blocks = {iv.block for iv in tl.intervals if iv.end is None}
    assert open_blocks == set(gpu.resident)
    for iv in tl.intervals:
        if iv.end is not None:
            assert iv.end >= iv.start
            assert iv.evict_trigger in ("fault", "migration", "preevict")


def test_eviction_trigger_split_separates_policies():
    rec_um, _, cap = _recorded_run("um")
    rec_dm, _, _ = _recorded_run("deepum")
    um = memory_timeline(rec_um, cap)
    dm = memory_timeline(rec_dm, cap)
    # Naive UM only evicts on the fault critical path; DeepUM's watermark
    # pre-evictor should absorb most evictions off it.
    assert set(um.evicts_by_trigger) == {"fault"}
    assert um.admits_by_reason.get("prefetch", 0) == 0
    assert dm.evicts_by_trigger.get("preevict", 0) > 0
    assert dm.admits_by_reason.get("prefetch", 0) > 0
    assert dm.evicts_by_trigger.get("fault", 0) < um.evicts_by_trigger["fault"]


def test_enabling_recording_changes_no_timed_metric():
    system = calibrate_system("mobilenet")

    def run(recorder):
        return run_experiment("mobilenet", 3072, "um", system=system,
                              warmup_iterations=1, measure_iterations=1,
                              recorder=recorder)

    plain = run(None)
    instrumented = run(SpanRecorder())
    assert plain.window.elapsed == instrumented.window.elapsed
    assert plain.window.page_faults == instrumented.window.page_faults
    assert plain.window.bytes_in == instrumented.window.bytes_in
    assert plain.window.bytes_out == instrumented.window.bytes_out


# ---------------------------------------------------------------- synthetic


def test_synthetic_timeline_counters():
    rec = _fake_recorder([
        _admit(0, 100, 100, t=1.0),
        _admit(1, 50, 150, t=2.0, reason="prefetch"),
        _grow(1, 10, 160, t=2.5),
        _evict(0, 100, 60, t=3.0, trigger="preevict"),
        _admit(0, 100, 160, t=4.0),  # re-fetch after eviction
        _evict(1, 60, 100, t=5.0, reason="drop", trigger="migration"),
    ])
    tl = memory_timeline(rec, capacity_bytes=1000)
    assert tl.admits == 3 and tl.evicts == 2
    assert tl.admits_by_reason == {"fault": 2, "prefetch": 1}
    assert tl.evicts_by_trigger == {"preevict": 1, "migration": 1}
    assert tl.evicts_by_reason == {"writeback": 1, "drop": 1}
    assert tl.grows == 1 and tl.grown_bytes == 10
    assert tl.refetched_admits == 1 and tl.refetched_bytes == 100
    assert tl.thrash_score == pytest.approx(1 / 3)
    assert tl.peak_used_bytes == 160
    # Working set: block 0 maxes at 100, block 1 grew to 60.
    assert tl.working_set_bytes == 160 and tl.working_set_blocks == 2
    assert tl.end_t == 5.0
    # Occupancy starts at the (0, 0) origin and tracks every event.
    assert tl.occupancy[0] == (0.0, 0)
    assert [u for _, u in tl.occupancy] == [0, 100, 150, 160, 60, 160, 100]

    rates = tl.rates(buckets=5)
    assert len(rates) == 5
    assert sum(r["admitted_bytes"] for r in rates) == 260  # admits + grow
    assert sum(r["evicted_bytes"] for r in rates) == 160

    doc = tl.to_dict()
    assert doc["occupancy"][0] == [0.0, 0]
    assert len(doc["intervals"]) == 3
    assert doc["thrash_score"] == tl.thrash_score


def test_to_dict_decimation_keeps_peak():
    rec = _fake_recorder(
        [_admit(i, 1, i + 1, t=float(i)) for i in range(5000)])
    tl = memory_timeline(rec, capacity_bytes=10000)
    doc = tl.to_dict(max_samples=100)
    assert len(doc["occupancy"]) <= 102
    assert max(u for _, u in doc["occupancy"]) == tl.peak_used_bytes


# ------------------------------------------------------- reconciliation


def test_mismatched_used_bytes_raises():
    rec = _fake_recorder([_admit(0, 100, 101)])
    with pytest.raises(MemoryReconciliationError, match="derived occupancy"):
        memory_timeline(rec, capacity_bytes=1000)


def test_double_admit_raises():
    rec = _fake_recorder([_admit(0, 100, 100), _admit(0, 100, 200)])
    with pytest.raises(MemoryReconciliationError, match="already"):
        memory_timeline(rec, capacity_bytes=1000)


def test_evict_without_admit_raises():
    rec = _fake_recorder([_evict(3, 100, 0)])
    with pytest.raises(MemoryReconciliationError, match="no admit is open"):
        memory_timeline(rec, capacity_bytes=1000)


def test_grow_of_nonresident_block_raises():
    rec = _fake_recorder([_grow(7, 10, 10)])
    with pytest.raises(MemoryReconciliationError, match="not resident"):
        memory_timeline(rec, capacity_bytes=1000)


def test_admit_past_capacity_raises():
    rec = _fake_recorder([_admit(0, 2000, 2000)])
    with pytest.raises(MemoryReconciliationError, match="exceeds capacity"):
        memory_timeline(rec, capacity_bytes=1000)


def test_tampered_real_run_is_caught():
    rec, _, capacity = _recorded_run("um", measure=1)
    # Drop the first memory event: every later `used` no longer matches
    # the derived running occupancy (or an evict finds no open admit).
    idx = next(i for i, inst in enumerate(rec.instants)
               if inst.track == TRACK_MEMORY)
    del rec.instants[idx]
    with pytest.raises(MemoryReconciliationError):
        memory_timeline(rec, capacity)


def test_empty_recorder_gives_empty_timeline():
    tl = memory_timeline(_fake_recorder([]), capacity_bytes=1000)
    assert isinstance(tl, MemoryTimeline)
    assert tl.admits == 0 and tl.evicts == 0
    assert tl.occupancy == [(0.0, 0)]
    assert tl.rates() == []
    assert tl.thrash_score == 0.0 and tl.oversubscription == 0.0
