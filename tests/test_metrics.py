"""Measurement-window metrics."""

import pytest

from repro.harness.metrics import Snapshot, WindowMetrics


def snap(elapsed, faults=0, gpu=0.0, link=0.0, bin_=0, bout=0):
    return Snapshot(elapsed=elapsed, page_faults=faults, gpu_busy=gpu,
                    link_busy=link, bytes_in=bin_, bytes_out=bout)


def window(before, after, iters=2):
    return WindowMetrics.between(before, after, iters,
                                 idle_watts=100.0, gpu_watts=200.0,
                                 link_watts=50.0)


def test_between_computes_deltas():
    w = window(snap(1.0, faults=10, gpu=0.5, link=0.2, bin_=100, bout=50),
               snap(3.0, faults=30, gpu=1.5, link=0.6, bin_=400, bout=250))
    assert w.elapsed == pytest.approx(2.0)
    assert w.page_faults == 20
    assert w.gpu_busy == pytest.approx(1.0)
    assert w.bytes_in == 300 and w.bytes_out == 200


def test_per_iteration_normalization():
    w = window(snap(0.0), snap(4.0), iters=4)
    assert w.seconds_per_iteration == 1.0
    assert w.seconds_per_100_iterations() == 100.0


def test_faults_per_iteration():
    w = window(snap(0.0, faults=0), snap(1.0, faults=10), iters=5)
    assert w.faults_per_iteration == 2.0


def test_energy_integrates_components():
    w = window(snap(0.0), snap(2.0, gpu=1.0, link=0.5))
    assert w.energy_joules == pytest.approx(100 * 2 + 200 * 1 + 50 * 0.5)


def test_zero_iterations_rejected():
    with pytest.raises(ValueError):
        window(snap(0.0), snap(1.0), iters=0)
