"""Finer-grained model structure checks (shapes, kernels, scaling rules)."""

import pytest

from repro.models.gpt2 import GPT2, build_gpt2, reshape_copy
from repro.models.bert import build_bert
from repro.models.dlrm import build_dlrm
from repro.models.resnet import STAGE_DEPTHS, build_resnet
from repro.models.mobilenet import MOBILENET_CFG, build_mobilenet
from repro.sim import UnifiedMemorySpace
from repro.torchsim.autograd import Tape
from repro.torchsim.backend import UMBackend
from repro.torchsim.context import Device, SimpleManager


def fresh_device():
    return Device.with_backend(
        UMBackend(um=UnifiedMemorySpace(), host_capacity=1 << 50),
        SimpleManager(),
    )


def kernel_names(device):
    return [l.name for l in device.manager.launches]


def test_gpt2_attention_kernel_sequence():
    device = fresh_device()
    workload = build_gpt2(device, 2, variant="l", scale=0.0625)
    workload.step()
    names = kernel_names(device)
    # attention pipeline: qkv gemm, splits, qk bmm, softmax, av bmm, merge
    for expected in ("sgemm", "split_q", "split_k", "split_v", "bmm",
                     "softmax_fwd", "head_merge"):
        assert expected in names, expected


def test_gpt2_heads_divide_width():
    device = fresh_device()
    workload = build_gpt2(device, 2, variant="xl", scale=0.0625)
    model = workload.model
    attn = model.blocks[0].attn
    assert attn.d_model % attn.heads == 0


def test_gpt2_unknown_variant():
    with pytest.raises(ValueError):
        build_gpt2(fresh_device(), 2, variant="xxl")


def test_reshape_copy_backward_restores_shape():
    device = fresh_device()
    tape = Tape(device=device)
    x = device.empty((2, 4, 8))
    y = reshape_copy(tape, x, (8, 8), "test_reshape")
    assert y.shape == (8, 8)
    entry = tape.entries[-1]
    (gx,) = entry.backward(device.empty((8, 8)))
    assert gx.shape == x.shape


def test_bert_mlm_vs_cola_heads_differ():
    mlm = build_bert(fresh_device(), 2, variant="base", dataset="wikitext",
                     scale=0.0625)
    cola = build_bert(fresh_device(), 2, variant="base", dataset="cola",
                      scale=0.0625)
    assert mlm.model.num_labels == 0
    assert cola.model.num_labels == 2
    # CoLA's classification head is far smaller than the MLM vocab head.
    assert cola.model.num_parameters() < mlm.model.num_parameters()


def test_bert_unknown_variant():
    with pytest.raises(ValueError):
        build_bert(fresh_device(), 2, variant="huge")


def test_dlrm_coverage_grows_with_batch():
    small = build_dlrm(fresh_device(), 500, scale=0.1)
    large = build_dlrm(fresh_device(), 4000, scale=0.1)
    assert large.model.tables[0].coverage > small.model.tables[0].coverage
    assert 0.0 < small.model.tables[0].coverage <= 1.0


def test_dlrm_has_26_tables_and_dense_mlp():
    workload = build_dlrm(fresh_device(), 100, scale=0.1)
    assert len(workload.model.tables) == 26
    workload.step()


def test_resnet_stage_depths_published():
    assert STAGE_DEPTHS["resnet152"] == (3, 8, 36, 3)
    assert STAGE_DEPTHS["resnet200"] == (3, 24, 36, 3)


def test_resnet_full_scale_block_count():
    device = fresh_device()
    workload = build_resnet(device, 1, variant="resnet152",
                            dataset="imagenet", scale=1.0)
    assert len(workload.model.blocks) == 50  # 3 + 8 + 36 + 3


def test_resnet_downsamples_on_stage_transitions():
    device = fresh_device()
    workload = build_resnet(device, 1, variant="resnet152",
                            dataset="cifar10", scale=0.125)
    blocks = workload.model.blocks
    assert blocks[0].downsample is not None      # channel widening
    with_down = [b for b in blocks if b.downsample is not None]
    assert len(with_down) == 4                   # one per stage


def test_resnet_unknown_variant():
    with pytest.raises(ValueError):
        build_resnet(fresh_device(), 1, variant="resnet999")


def test_mobilenet_depthwise_pairs():
    device = fresh_device()
    workload = build_mobilenet(device, 8, scale=0.25)
    assert len(workload.model.blocks) == len(MOBILENET_CFG) == 13
    workload.step()
    names = kernel_names(device)
    grouped = [l for l in device.manager.launches
               if l.name == "conv2d_fwd" and l.arg_signature[4] > 1]
    assert len(grouped) == 13  # one depthwise conv per pair


def test_workload_repr():
    workload = build_mobilenet(fresh_device(), 4, scale=0.25)
    assert "mobilenet" in repr(workload)
