"""The nine workload models: construction, determinism, footprint scaling."""

import pytest

from repro.models.base import Workload, scaled
from repro.models.registry import MODEL_BUILDERS, get_model_config, list_models
from repro.sim import UnifiedMemorySpace
from repro.torchsim.backend import UMBackend
from repro.torchsim.context import Device, SimpleManager

TINY = 0.0625  # very small dims: fast construction for every model


def fresh_device(seed=0):
    um = UnifiedMemorySpace()
    return Device.with_backend(
        UMBackend(um=um, host_capacity=1 << 50), SimpleManager(), seed=seed
    )


def test_registry_lists_all_paper_models():
    names = list_models()
    for expected in ["gpt2-xl", "gpt2-l", "bert-large", "bert-base", "dlrm",
                     "resnet152", "resnet200", "resnet200-cifar",
                     "bert-large-cola", "dcgan", "mobilenet"]:
        assert expected in names


def test_unknown_model_raises():
    with pytest.raises(KeyError):
        get_model_config("alexnet")


@pytest.mark.parametrize("name", list_models())
def test_every_model_builds_and_trains(name):
    cfg = get_model_config(name)
    device = fresh_device()
    workload = cfg.build(device, cfg.sim_batch(cfg.fig9_batches[0]), scale=TINY)
    assert isinstance(workload, Workload)
    workload.step()
    assert device.kernel_count > 20
    assert workload.model.num_parameters() > 0


@pytest.mark.parametrize("name", ["gpt2-l", "bert-base", "resnet152",
                                  "mobilenet", "dcgan"])
def test_steady_state_kernel_stream_is_periodic(name):
    """Iterations 2 and 3 launch identical kernel sequences — the
    repetition DeepUM's correlation tables rely on."""
    cfg = get_model_config(name)
    device = fresh_device()
    workload = cfg.build(device, cfg.sim_batch(cfg.fig9_batches[0]), scale=TINY)
    workload.step()
    launches = device.manager.launches
    start2 = len(launches)
    workload.step()
    start3 = len(launches)
    workload.step()
    iter2 = [l.exec_signature for l in launches[start2:start3]]
    iter3 = [l.exec_signature for l in launches[start3:]]
    assert iter2 == iter3


def test_memory_steady_after_warmup():
    cfg = get_model_config("bert-base")
    device = fresh_device()
    workload = cfg.build(device, 2, scale=TINY)
    workload.step()
    workload.step()
    after_two = device.allocator.stats.allocated_bytes
    workload.step()
    assert device.allocator.stats.allocated_bytes == after_two


def test_footprint_grows_with_batch():
    cfg = get_model_config("bert-base")
    sizes = []
    for batch in (2, 8):
        device = fresh_device()
        workload = cfg.build(device, batch, scale=TINY)
        workload.step()
        sizes.append(device.allocator.stats.peak_allocated)
    assert sizes[1] > sizes[0]


def test_footprint_grows_with_scale():
    cfg = get_model_config("gpt2-l")
    sizes = []
    for scale in (TINY, 2 * TINY):
        device = fresh_device()
        workload = cfg.build(device, 2, scale=scale)
        workload.step()
        sizes.append(device.allocator.stats.peak_allocated)
    assert sizes[1] > 2 * sizes[0]


def test_dlrm_embedding_access_is_irregular():
    """DLRM's table lookups go through SparseAccess — the defining trait."""
    cfg = get_model_config("dlrm")
    device = fresh_device()
    workload = cfg.build(device, 64, scale=TINY)
    workload.step()
    sparse = [l for l in device.manager.launches if l.sparse is not None]
    assert len(sparse) >= 26  # one lookup per categorical feature


def test_dlrm_tables_skip_dense_optimizer():
    cfg = get_model_config("dlrm")
    device = fresh_device()
    workload = cfg.build(device, 64, scale=TINY)
    table_params = {id(t.table) for t in workload.model.tables}
    assert all(id(p) not in table_params for p in workload.optimizer.params)


def test_gpt2_variants_differ_in_size():
    dl, dxl = fresh_device(), fresh_device()
    wl = get_model_config("gpt2-l").build(dl, 2, scale=TINY)
    wxl = get_model_config("gpt2-xl").build(dxl, 2, scale=TINY)
    assert wxl.model.num_parameters() > wl.model.num_parameters()


def test_resnet200_deeper_than_152():
    d152, d200 = fresh_device(), fresh_device()
    w152 = get_model_config("resnet152").build(d152, 4, scale=TINY)
    w200 = get_model_config("resnet200").build(d200, 4, scale=TINY)
    assert len(w200.model.blocks) > len(w152.model.blocks)


def test_dcgan_uses_two_optimizers():
    device = fresh_device()
    workload = get_model_config("dcgan").build(device, 8, scale=TINY)
    assert len(workload.extra_optimizers) == 1
    workload.step()
    assert any(l.name == "adam_step" for l in device.manager.launches)


def test_bert_cola_has_classifier_head():
    device = fresh_device()
    workload = get_model_config("bert-large-cola").build(device, 4, scale=TINY)
    assert workload.model.num_labels == 2


def test_sim_batch_floor():
    cfg = get_model_config("resnet152")
    assert cfg.sim_batch(1) == 1
    assert cfg.sim_batch(1280) == 1280 // cfg.batch_divisor


def test_scaled_helper():
    assert scaled(100, 0.5) == 50
    assert scaled(100, 0.001, minimum=8) == 8
    assert scaled(100, 0.5, multiple=8) == 48
