"""Module system, layers, and optimizers."""

import pytest

from repro.torchsim import functional as F
from repro.torchsim.autograd import Tape
from repro.torchsim.dtypes import int64
from repro.torchsim.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    EmbeddingBag,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.torchsim.module import Module, Parameter, Sequential
from repro.torchsim.optim import SGD, Adam, AdamW


def test_parameters_are_discovered_recursively(sim_device):
    class Net(Module):
        def __init__(self, device):
            super().__init__()
            self.a = Linear(device, 4, 4, name="a")
            self.b = Sequential(Linear(device, 4, 4, name="b"), ReLU())

    net = Net(sim_device)
    names = dict(net.named_parameters())
    assert "a.weight" in names and "a.bias" in names
    assert any("m0.weight" in n for n in names)
    assert net.num_parameters() == 2 * (16 + 4)


def test_parameters_deduplicated(sim_device):
    class Shared(Module):
        def __init__(self, device):
            super().__init__()
            lin = Linear(device, 4, 4)
            self.a = lin
            self.b = lin

    assert len(list(Shared(sim_device).parameters())) == 2  # weight + bias


def test_sequential_applies_in_order(sim_device):
    seq = Sequential(Linear(sim_device, 8, 16, name="l1"),
                     ReLU(),
                     Linear(sim_device, 16, 4, name="l2"))
    tape = Tape(device=sim_device)
    y = seq(tape, sim_device.empty((2, 8)))
    assert y.shape == (2, 4)
    assert len(seq) == 3


def test_layer_forward_shapes(sim_device):
    tape = Tape(device=sim_device)
    x = sim_device.empty((2, 3, 16, 16))
    y = Conv2d(sim_device, 3, 8, 3, padding=1)(tape, x)
    y = BatchNorm2d(sim_device, 8)(tape, y)
    y = MaxPool2d(kernel=2, stride=2)(tape, y)
    assert y.shape == (2, 8, 8, 8)


def test_linear_no_bias(sim_device):
    lin = Linear(sim_device, 8, 8, bias=False)
    assert lin.bias is None
    assert len(list(lin.parameters())) == 1


def test_dropout_layer(sim_device):
    tape = Tape(device=sim_device)
    y = Dropout(0.5)(tape, sim_device.empty((4, 4)))
    assert y.shape == (4, 4)


def test_embedding_layers(sim_device):
    tape = Tape(device=sim_device)
    idx = sim_device.empty((3, 7), int64, persistent=True)
    y = Embedding(sim_device, 50, 8)(tape, idx)
    assert y.shape == (3, 7, 8)
    bag_idx = sim_device.empty((5,), int64, persistent=True)
    bag = EmbeddingBag(sim_device, 1000, 8, coverage=0.5)
    assert bag(tape, bag_idx).shape == (5, 8)
    assert bag.table.sparse_grad


def test_layernorm_params(sim_device):
    ln = LayerNorm(sim_device, 32)
    assert {p.shape for p in ln.parameters()} == {(32,)}


def _train_one_step(sim_device, opt_cls, **kw):
    lin = Linear(sim_device, 8, 8)
    opt = opt_cls(sim_device, lin.parameters(), **kw)
    tape = Tape(device=sim_device)
    x = sim_device.empty((2, 8))
    t = sim_device.empty((2,), int64, persistent=True)
    tape.backward(F.cross_entropy(tape, lin(tape, x), t))
    opt.step()
    opt.zero_grad()
    return lin, opt


def test_sgd_state_and_kernels(sim_device):
    lin, opt = _train_one_step(sim_device, SGD, lr=0.1, momentum=0.9)
    steps = [l for l in sim_device.manager.launches if l.name == "sgd_step"]
    assert len(steps) == 2  # weight + bias
    # momentum: one state tensor per parameter
    assert opt.state_bytes() == lin.weight.nbytes + lin.bias.nbytes


def test_adam_has_two_state_slots(sim_device):
    lin, opt = _train_one_step(sim_device, Adam)
    assert opt.state_bytes() == 2 * (lin.weight.nbytes + lin.bias.nbytes)


def test_adamw_kernel_name(sim_device):
    _train_one_step(sim_device, AdamW)
    assert any(l.name == "adamw_step" for l in sim_device.manager.launches)


def test_optimizer_skips_sparse_grad_params(sim_device):
    bag = EmbeddingBag(sim_device, 100, 8, coverage=0.5)
    lin = Linear(sim_device, 8, 8)
    opt = SGD(sim_device, list(bag.parameters()) + list(lin.parameters()))
    assert bag.table not in opt.params
    assert lin.weight in opt.params


def test_step_skips_params_without_grad(sim_device):
    lin = Linear(sim_device, 4, 4)
    opt = SGD(sim_device, lin.parameters())
    opt.step()  # no grads yet: no kernels
    assert not any(l.name == "sgd_step" for l in sim_device.manager.launches)


def test_zero_grad_emits_fill(sim_device):
    _train_one_step(sim_device, SGD)
    assert any(l.name == "zero_grad" for l in sim_device.manager.launches)


def test_parameter_bytes(sim_device):
    lin = Linear(sim_device, 16, 16)
    assert lin.parameter_bytes() == (16 * 16 + 16) * 4
