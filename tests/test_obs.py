"""The observability layer: recorder, phase breakdown, Chrome-trace export."""

import io
import json

import pytest

from repro.baselines import VDNN
from repro.config import DeepUMConfig, GPUSpec, HostSpec, SystemConfig
from repro.constants import GiB, MiB
from repro.core.deepum import DeepUM
from repro.obs import (
    NULL_RECORDER,
    SpanRecorder,
    TRACK_GPU,
    TRACK_LINK,
    aggregate_by_kernel,
    attach,
    chrome_trace_dict,
    kernel_phases,
    tracer_chrome_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from workloads import make_mlp_workload


@pytest.fixture(scope="module")
def recorded_run():
    """One instrumented DeepUM training run shared by the module's tests."""
    system = SystemConfig(gpu=GPUSpec(memory_bytes=64 * MiB),
                          host=HostSpec(memory_bytes=4 * GiB))
    deepum = DeepUM(system, DeepUMConfig(prefetch_degree=8))
    rec = attach(deepum)
    step, _, _ = make_mlp_workload(deepum.device, layers_n=6, dim=512,
                                   batch=128)
    for _ in range(3):
        step()
    return deepum, rec


# --------------------------------------------------------------------- #
# recorder units
# --------------------------------------------------------------------- #

def test_null_recorder_is_inert():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.begin_kernel("k", 0.0)
    NULL_RECORDER.span(TRACK_GPU, "s", 0.0, 1.0)
    NULL_RECORDER.instant(TRACK_GPU, "i", 0.0)
    NULL_RECORDER.note_prefetch_done(1)
    assert NULL_RECORDER.note_access(1) is False
    NULL_RECORDER.note_evict(1)
    NULL_RECORDER.end_kernel(1.0)


def test_events_are_stamped_with_the_current_kernel():
    rec = SpanRecorder()
    rec.set_exec_id(42)
    rec.begin_kernel("conv", 1.0)
    rec.span(TRACK_LINK, "xfer", 1.0, 2.0)
    rec.instant(TRACK_GPU, "fault", 1.5)
    rec.end_kernel(3.0, compute_time=0.5)
    rec.span(TRACK_LINK, "late", 3.0, 4.0)  # between kernels: unowned
    k = rec.kernels[0]
    assert (k.name, k.exec_id, k.start, k.end) == ("conv", 42, 1.0, 3.0)
    assert rec.spans[0].kernel_seq == 0
    assert rec.instants[0].kernel_seq == 0
    assert rec.spans[1].kernel_seq == -1


def test_prefetch_usefulness_accounting():
    rec = SpanRecorder()
    rec.begin_kernel("a", 0.0)
    rec.note_prefetch_done(7)
    rec.note_prefetch_done(8)
    rec.end_kernel(1.0)
    rec.begin_kernel("b", 1.0)
    assert rec.note_access(7) is True     # used: charged to kernel 0
    assert rec.note_access(7) is False    # only the first access counts
    rec.note_evict(8)                      # never touched: wasted
    rec.end_kernel(2.0)
    assert rec.prefetch_used == 1 and rec.prefetch_wasted == 1
    assert rec.prefetch_accuracy() == pytest.approx(0.5)
    assert rec.kernel_prefetch_done[0] == 2
    assert rec.kernel_prefetch_useful[0] == 1


# --------------------------------------------------------------------- #
# attach + end-to-end attribution
# --------------------------------------------------------------------- #

def test_attach_rejects_tensor_swap_facades():
    system = SystemConfig(gpu=GPUSpec(memory_bytes=64 * MiB),
                          host=HostSpec(memory_bytes=4 * GiB))
    with pytest.raises(TypeError):
        attach(VDNN(system))


def test_per_kernel_stall_sums_match_engine_aggregates(recorded_run):
    deepum, rec = recorded_run
    eng = deepum.engine
    assert rec.total_fault_wait() == pytest.approx(eng.metrics.fault_wait_time)
    assert rec.total_inflight_wait() == \
        pytest.approx(eng.metrics.inflight_wait_time)
    assert sum(k.faults for k in rec.kernels) == eng.stats.faulted_blocks


def test_fault_phases_cover_each_kernels_fault_wait(recorded_run):
    _, rec = recorded_run
    phased = [kp for kp in kernel_phases(rec) if kp.faults]
    assert phased, "the tiny GPU must produce faulting kernels"
    for kp in phased:
        assert sum(kp.fault_phases.values()) == pytest.approx(kp.fault_wait)


def test_aggregate_sorts_by_stall_and_preserves_totals(recorded_run):
    _, rec = recorded_run
    aggs = aggregate_by_kernel(rec)
    stalls = [a.stall_time for a in aggs]
    assert stalls == sorted(stalls, reverse=True)
    assert sum(a.fault_wait for a in aggs) == \
        pytest.approx(rec.total_fault_wait())
    assert sum(a.launches for a in aggs) == len(rec.kernels)


# --------------------------------------------------------------------- #
# Chrome-trace export
# --------------------------------------------------------------------- #

def test_chrome_trace_is_structurally_valid(recorded_run):
    _, rec = recorded_run
    doc = chrome_trace_dict(rec)
    validate_chrome_trace(doc)
    # Round-trips through JSON (no non-serializable args leaked in).
    validate_chrome_trace(json.loads(json.dumps(doc)))


def test_chrome_trace_stall_args_sum_to_engine_aggregate(recorded_run):
    deepum, rec = recorded_run
    eng = deepum.engine
    doc = chrome_trace_dict(rec)
    kernel_events = [e for e in doc["traceEvents"]
                     if e.get("cat") == "kernel"]
    assert len(kernel_events) == len(rec.kernels)
    total_stall = sum(e["args"]["fault_wait_s"] + e["args"]["inflight_wait_s"]
                      for e in kernel_events)
    assert total_stall == pytest.approx(
        eng.metrics.fault_wait_time + eng.metrics.inflight_wait_time)


def test_write_chrome_trace_to_file_object(recorded_run):
    _, rec = recorded_run
    buf = io.StringIO()
    write_chrome_trace(rec, buf)
    validate_chrome_trace(json.loads(buf.getvalue()))


def test_validate_rejects_malformed_documents():
    with pytest.raises(ValueError):
        validate_chrome_trace({})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "X", "ts": 0.0,
                                               "dur": -1.0}]})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "i"}]})


def test_tracer_events_convert_to_instants():
    from repro.trace import TraceEvent

    events = [
        TraceEvent(seq=0, kind="launch", time=0.0, exec_id=3,
                   kernel_name="conv"),
        TraceEvent(seq=1, kind="fault", time=0.5, block=7),
        TraceEvent(seq=2, kind="prefetch", time=0.6, block=8),
    ]
    out = tracer_chrome_events(events)
    validate_chrome_trace({"traceEvents": out})
    instants = [e for e in out if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["conv", "fault", "prefetch"]
    assert instants[1]["args"]["block"] == 7
