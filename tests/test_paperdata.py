"""Consistency of the transcribed paper-reference data."""

from repro.harness.paperdata import (
    FIG9B_ELAPSED,
    FIG10_REDUCTION,
    FIG11_BEST_DEGREE,
    FIG12_BEST_CONFIG,
    PAPER_AVG_SPEEDUP_OVER_LMS,
    PAPER_AVG_SPEEDUP_OVER_UM,
    TABLE3_MAX_BATCH,
    TABLE4_TABLE_MB,
    TABLE5_FAULTS,
    TABLE6_CONFIGS,
    TABLE7_MAX_BATCH,
    TABLE8_COMPARISON,
)
from repro.models.registry import MODEL_BUILDERS


def test_fig9b_models_are_registered():
    for model, _ in FIG9B_ELAPSED:
        assert model in MODEL_BUILDERS


def test_fig9b_batches_match_registry_grids():
    for (model, batch) in FIG9B_ELAPSED:
        assert batch in MODEL_BUILDERS[model].fig9_batches


def test_fig9b_deepum_beats_um_everywhere_but_dlrm_is_closest():
    ratios = {}
    for (model, batch), cells in FIG9B_ELAPSED.items():
        if cells["um"] and cells["deepum"]:
            ratios.setdefault(model, []).append(cells["um"] / cells["deepum"])
    means = {m: sum(v) / len(v) for m, v in ratios.items()}
    assert all(mean > 1.0 for mean in means.values())
    assert means["dlrm"] == min(means.values())


def test_headline_averages_consistent_with_cells():
    # The per-cell table must support the ~3x headline within tolerance.
    speedups = [cells["um"] / cells["deepum"]
                for cells in FIG9B_ELAPSED.values()
                if cells["um"] and cells["deepum"]]
    import math
    gmean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    assert abs(gmean - PAPER_AVG_SPEEDUP_OVER_UM) / PAPER_AVG_SPEEDUP_OVER_UM < 0.25
    assert PAPER_AVG_SPEEDUP_OVER_LMS > 1.0


def test_table3_deepum_strictly_larger():
    for model, row in TABLE3_MAX_BATCH.items():
        assert row["deepum"] > row["lms"], model


def test_table4_positive_and_keyed_to_models():
    for (model, _), mb in TABLE4_TABLE_MB.items():
        assert model in MODEL_BUILDERS
        assert mb > 0


def test_table5_deepum_under_two_percent_of_um():
    for (model, _), cells in TABLE5_FAULTS.items():
        ratio = cells["deepum"] / cells["um"]
        assert ratio < 0.02, (model, ratio)


def test_fig10_monotone():
    assert (FIG10_REDUCTION["prefetch"]
            < FIG10_REDUCTION["prefetch+preevict"]
            < FIG10_REDUCTION["prefetch+preevict+invalidate"])


def test_table6_contains_best_config():
    names = [c[0] for c in TABLE6_CONFIGS]
    assert FIG12_BEST_CONFIG in names
    assert len(TABLE6_CONFIGS) == 13
    name, assoc, succs, rows = TABLE6_CONFIGS[names.index(FIG12_BEST_CONFIG)]
    assert (assoc, succs, rows) == (2, 4, 2048)


def test_fig11_best_degree_documented():
    assert FIG11_BEST_DEGREE == 32


def test_table7_deepum_largest_where_defined():
    for model, row in TABLE7_MAX_BATCH.items():
        deepum = row["deepum"]
        for system, value in row.items():
            if system == "deepum" or value is None:
                continue
            assert deepum > value, (model, system)


def test_table8_deepum_is_transparent_profiler():
    row = next(r for r in TABLE8_COMPARISON if r[0] == "DeepUM")
    name, base, fw_mod, script_mod, profiling = row
    assert base == "PyTorch"
    assert fw_mod is True and script_mod is False and profiling is True
