"""The pluggable prefetch-policy framework (``repro.policies``).

Covers the registry's coherence with the harness POLICIES table, protocol
conformance of every entrant, the ``build_policy`` config-rejection fix,
end-to-end runs of the non-deepum prefetchers under oversubscription, and
the bit-for-bit golden pin that the deepum entrant survived the refactor
unchanged.
"""

import json
import pathlib

import pytest

from repro.api import RunRequest, RunResult, execute
from repro.config import DeepUMConfig, GPUSpec, HostSpec, SystemConfig
from repro.constants import GiB, MiB
from repro.harness.experiment import (
    POLICIES,
    build_policy,
    calibrate_system,
    policy_accepts_config,
)
from repro.policies import (
    PREFETCH_POLICIES,
    PolicySpec,
    PrefetchPolicy,
    build_prefetch_policy,
)

from workloads import make_mlp_workload

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_cells.json"


@pytest.fixture
def system():
    return SystemConfig(gpu=GPUSpec(memory_bytes=96 * MiB),
                        host=HostSpec(memory_bytes=2 * GiB))


# ------------------------------------------------------------- registry

def test_registry_names_and_harness_coherence():
    assert set(PREFETCH_POLICIES) == {"deepum", "stride", "markov"}
    for name, spec in PREFETCH_POLICIES.items():
        assert isinstance(spec, PolicySpec)
        assert spec.name == name
        assert spec.description
        # Every prefetch policy is runnable through the harness table and
        # is exactly the set that honors a DeepUMConfig.
        assert name in POLICIES
        assert policy_accepts_config(name)
    for name in POLICIES:
        if name not in PREFETCH_POLICIES:
            assert not policy_accepts_config(name)


def test_unknown_prefetch_policy_is_a_keyerror(system):
    facade = build_policy("deepum", system)
    with pytest.raises(KeyError) as err:
        build_prefetch_policy("fifo", facade.engine, DeepUMConfig())
    # The error names the known policies.
    assert "deepum" in str(err.value)


@pytest.mark.parametrize("name", sorted(PREFETCH_POLICIES))
def test_every_entrant_satisfies_the_protocol(name, system):
    facade = build_policy(name, system, deepum_config=DeepUMConfig())
    policy = facade.driver.policy
    assert isinstance(policy, PrefetchPolicy)
    assert policy.name == name
    assert policy.table_size_bytes >= 0
    assert facade.driver.correlation_table_bytes == policy.table_size_bytes


def test_build_policy_rejects_config_for_non_um_policies(system):
    """Satellite fix: a DeepUMConfig on e.g. ``um`` used to be silently
    ignored; it is a caller error now."""
    with pytest.raises(ValueError, match="does not honor a DeepUMConfig"):
        build_policy("um", system, deepum_config=DeepUMConfig())
    with pytest.raises(ValueError):
        build_policy("lms", system,
                     deepum_config=DeepUMConfig(prefetch_degree=8))
    # No config, no error.
    assert build_policy("um", system) is not None


# --------------------------------------------------- request round-trips

@pytest.mark.parametrize("name", sorted(POLICIES))
def test_every_policy_round_trips_through_request_dicts(name):
    cfg = DeepUMConfig(prefetch_degree=8) if policy_accepts_config(name) \
        else None
    req = RunRequest(model="mobilenet", policy=name, batch=64, seed=3,
                     deepum_config=cfg)
    assert RunRequest.from_dict(req.to_dict()) == req
    resolved = req.resolved()
    assert RunRequest.from_dict(resolved.to_dict()) == resolved


@pytest.mark.parametrize("name", sorted(PREFETCH_POLICIES) + ["um"])
def test_prefetch_entrants_execute_and_round_trip_results(name):
    res = execute(RunRequest(model="mobilenet", policy=name, batch=64,
                             warmup_iterations=1, measure_iterations=1))
    assert res.ok, res.error
    again = RunResult.from_dict(res.to_dict())
    assert again.status == "ok"
    assert again.snapshot == res.snapshot
    assert again.request == res.request


# ------------------------------------------- end-to-end oversubscription

@pytest.mark.parametrize("name", ["stride", "markov"])
def test_new_prefetchers_prefetch_under_oversubscription(name):
    system = calibrate_system("mobilenet", oversubscription=2.2)
    res = execute(RunRequest(model="mobilenet", policy=name, batch=3072,
                             warmup_iterations=1, measure_iterations=1,
                             system=system))
    assert res.ok, res.error
    assert res.snapshot["prefetched"] > 0
    assert res.snapshot["prefetch_coverage"] > 0
    assert res.snapshot["page_faults"] > 0  # genuinely oversubscribed


def test_new_prefetchers_train_toy_mlp(system):
    for name in ("stride", "markov"):
        facade = build_policy(name, system)
        step, _, _ = make_mlp_workload(facade.device, layers_n=4, dim=512,
                                       batch=64)
        for _ in range(2):
            step()
        assert facade.elapsed() > 0


# ------------------------------------------------------------ golden pin

def test_deepum_and_um_reproduce_golden_cells_bit_for_bit():
    """The tentpole invariant: the policy refactor changed no simulated
    metric for the pre-existing policies. The golden file was captured at
    the pre-refactor commit; every field must match exactly (no approx)."""
    golden = json.loads(GOLDEN.read_text())
    assert set(golden) == {
        "dcgan@2048/deepum", "dcgan@2048/um",
        "mobilenet@3072/deepum", "mobilenet@3072/um",
    }
    for key, want in golden.items():
        model_batch, policy = key.rsplit("/", 1)
        model, batch = model_batch.split("@")
        res = execute(RunRequest(model=model, policy=policy,
                                 batch=int(batch)))
        assert res.ok, res.error
        assert res.snapshot == want, f"golden mismatch for {key}"


# ---------------------------------------------------------- health guard

def test_policy_health_tables_need_a_correlator():
    """Drivers without a correlation table (stride, markov) contribute no
    table-health section instead of crashing the report."""
    from repro.obs import SpanRecorder
    from repro.obs.health import policy_health

    class TablelessDriver:
        correlator = None

    health = policy_health(SpanRecorder(), TablelessDriver())
    assert health.tables is None
    assert health.to_dict()["tables"] is None
