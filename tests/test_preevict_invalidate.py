"""Pre-eviction policy and inactive-PT-block invalidation."""

import pytest

from repro.config import FaultCosts, LinkSpec
from repro.constants import UM_BLOCK_SIZE
from repro.core.block_table import BlockTableConfig
from repro.core.correlator import Correlator
from repro.core.invalidate import InactiveBlockRegistry
from repro.core.preevict import PreEvictor
from repro.core.prefetcher import ChainingPrefetcher
from repro.sim.fault_handler import DriverFaultHandler
from repro.sim.gpu import GPUMemory
from repro.sim.interconnect import PCIeLink
from repro.sim.um_space import BlockLocation, UnifiedMemorySpace
from repro.torchsim.allocator import CachingAllocator
from repro.torchsim.backend import UMBackend


def make_stack(capacity_blocks=4, watermark=0.3):
    um = UnifiedMemorySpace()
    gpu = GPUMemory(capacity_bytes=capacity_blocks * UM_BLOCK_SIZE)
    link = PCIeLink(bandwidth=LinkSpec().bandwidth, latency=LinkSpec().latency)
    handler = DriverFaultHandler(um=um, gpu=gpu, link=link, costs=FaultCosts())
    cor = Correlator(BlockTableConfig(num_rows=16, assoc=2, num_succs=4))
    pf = ChainingPrefetcher(cor, degree=2)
    pe = PreEvictor(gpu, handler, pf, low_watermark=watermark, batch_blocks=2)
    return um, gpu, handler, cor, pf, pe


def admit(um, gpu, idx, now=0.0):
    blk = um.block(idx)
    blk.populate(512)
    blk.location = BlockLocation.CPU
    gpu.admit(blk, now)
    return blk


def test_watermark_validation():
    um, gpu, handler, cor, pf, _ = make_stack()
    with pytest.raises(ValueError):
        PreEvictor(gpu, handler, pf, low_watermark=1.5)


def test_no_eviction_with_headroom():
    um, gpu, handler, cor, pf, pe = make_stack(capacity_blocks=4)
    admit(um, gpu, 0)
    assert not pe.needs_room()
    assert pe.tick(0.0) is False


def test_evicts_lru_migrated_when_low():
    um, gpu, handler, cor, pf, pe = make_stack(capacity_blocks=4)
    blocks = [admit(um, gpu, i, now=float(i)) for i in range(4)]
    assert pe.needs_room()
    assert pe.tick(1.0)
    assert not gpu.is_resident(blocks[0])
    assert not gpu.is_resident(blocks[1])  # batch of two
    assert gpu.is_resident(blocks[2])


def test_protected_blocks_skipped():
    um, gpu, handler, cor, pf, pe = make_stack(capacity_blocks=4)
    blocks = [admit(um, gpu, i, now=float(i)) for i in range(4)]
    # Predict blocks 0 and 1 for upcoming kernels.
    cor.on_kernel_launch(1)
    pf.on_kernel_launch(1)
    pf.restart_from_fault(0)
    pf.restart_from_fault(1)
    pe.tick(1.0)
    assert gpu.is_resident(blocks[0]) and gpu.is_resident(blocks[1])
    assert not gpu.is_resident(blocks[2])
    assert pe.stats.protected_skips >= 2


def test_invalidated_blocks_preferred_and_dropped_free():
    um, gpu, handler, cor, pf, pe = make_stack(capacity_blocks=4)
    blocks = [admit(um, gpu, i, now=float(i)) for i in range(4)]
    gpu.set_invalidated(blocks[3])  # newest, but dead
    before_out = handler.link.bytes_to_cpu
    pe.tick(1.0)
    assert not gpu.is_resident(blocks[3])
    assert handler.stats.invalidated_evictions >= 1
    # Dead victim produced no write-back traffic.
    assert handler.link.bytes_to_cpu - before_out <= 1 * UM_BLOCK_SIZE


# --------------------------------------------------------------------- #
# victim-scan early stop and skip accounting (regression pins)
# --------------------------------------------------------------------- #


class FixedProtection:
    """A ProtectedBlockProvider pinning an exact protected set."""

    def __init__(self, protected):
        self._protected = frozenset(protected)

    def protected_blocks(self):
        return self._protected


def make_pe(capacity_blocks, protected, batch_blocks=2):
    um = UnifiedMemorySpace()
    gpu = GPUMemory(capacity_bytes=capacity_blocks * UM_BLOCK_SIZE)
    link = PCIeLink(bandwidth=LinkSpec().bandwidth, latency=LinkSpec().latency)
    handler = DriverFaultHandler(um=um, gpu=gpu, link=link, costs=FaultCosts())
    pe = PreEvictor(gpu, handler, FixedProtection(protected),
                    low_watermark=0.3, batch_blocks=batch_blocks)
    return um, gpu, pe


def test_scan_stops_early_and_unreached_protection_is_not_a_skip():
    """Once the live candidate list is full and no invalidated block
    remains ahead, the scan stops: protected blocks it never reached were
    never deferred and must not inflate ``protected_skips``."""
    um, gpu, pe = make_pe(6, protected={4, 5}, batch_blocks=2)
    for i in range(6):
        admit(um, gpu, i, now=float(i))
    victims = pe.select_victims()
    assert [v.index for v in victims] == [0, 1]
    assert pe.stats.protected_skips == 0


def test_skip_counted_exactly_once_per_deferred_candidate():
    um, gpu, pe = make_pe(4, protected={0}, batch_blocks=2)
    for i in range(4):
        admit(um, gpu, i, now=float(i))
    victims = pe.select_victims()
    # Block 0 (oldest) would have been picked — that is one deferral; the
    # batch refills from 1 and 2 and the scan needs nothing further.
    assert [v.index for v in victims] == [1, 2]
    assert pe.stats.protected_skips == 1


def test_scan_continues_past_full_live_list_for_invalidated_blocks():
    """A protected invalidated block deep in the migration order is still
    reached (free victims are preferred wherever they sit) and its
    deferral is counted."""
    um, gpu, pe = make_pe(4, protected={3}, batch_blocks=2)
    blocks = [admit(um, gpu, i, now=float(i)) for i in range(4)]
    gpu.set_invalidated(blocks[3])
    victims = pe.select_victims()
    assert [v.index for v in victims] == [0, 1]  # live fallback
    assert pe.stats.protected_skips == 1


def test_unprotected_invalidated_block_preempts_live_fallback():
    um, gpu, pe = make_pe(4, protected=(), batch_blocks=2)
    blocks = [admit(um, gpu, i, now=float(i)) for i in range(4)]
    gpu.set_invalidated(blocks[3])
    victims = pe.select_victims()
    assert [v.index for v in victims] == [3, 0]
    assert pe.stats.protected_skips == 0


def test_set_invalidated_keeps_resident_counter_in_sync():
    um, gpu, pe = make_pe(4, protected=(), batch_blocks=2)
    blocks = [admit(um, gpu, i, now=float(i)) for i in range(3)]
    assert gpu.invalidated_resident == 0
    gpu.set_invalidated(blocks[1])
    gpu.set_invalidated(blocks[1])  # idempotent
    assert gpu.invalidated_resident == 1
    gpu.set_invalidated(blocks[1], False)
    assert gpu.invalidated_resident == 0
    # Non-resident blocks flip their flag without touching the counter.
    outside = um.block(9)
    gpu.set_invalidated(outside)
    assert gpu.invalidated_resident == 0
    # Admission and removal of an already-invalidated block both count.
    outside.populate(512)
    gpu.admit(outside, 5.0)
    assert gpu.invalidated_resident == 1
    gpu.remove(outside)
    assert gpu.invalidated_resident == 0


# --------------------------------------------------------------------- #
# invalidation registry
# --------------------------------------------------------------------- #


def make_registry():
    um = UnifiedMemorySpace()
    allocator = CachingAllocator(UMBackend(um=um, host_capacity=1 << 40))
    registry = InactiveBlockRegistry(um)
    allocator.state_listeners.append(registry)
    return um, allocator, registry


def test_inactive_large_block_invalidates_interior_blocks():
    um, allocator, registry = make_registry()
    pt = allocator.allocate(4 * UM_BLOCK_SIZE)
    allocator.free(pt)
    first = -(-pt.addr // UM_BLOCK_SIZE)
    invalidated = [um.block(i).invalidated
                   for i in range(first, pt.end // UM_BLOCK_SIZE)]
    assert all(invalidated)
    assert registry.stats.blocks_invalidated >= 4


def test_partial_blocks_not_invalidated():
    """A UM block only partially covered by the inactive range stays valid."""
    um, allocator, registry = make_registry()
    pt = allocator.allocate(UM_BLOCK_SIZE // 2)
    blk = um.block(pt.addr // UM_BLOCK_SIZE)
    allocator.free(pt)
    assert not blk.invalidated


def test_reactivation_clears_overlapping_flags():
    um, allocator, registry = make_registry()
    pt = allocator.allocate(4 * UM_BLOCK_SIZE)
    addr = pt.addr
    allocator.free(pt)
    pt2 = allocator.allocate(4 * UM_BLOCK_SIZE)
    assert pt2.addr == addr  # pool reuse
    for i in range(addr // UM_BLOCK_SIZE, (addr + 4 * UM_BLOCK_SIZE) // UM_BLOCK_SIZE):
        assert not um.block(i).invalidated
    assert registry.stats.blocks_revalidated >= 4


def test_stats_count_events():
    um, allocator, registry = make_registry()
    pt = allocator.allocate(2 * UM_BLOCK_SIZE)
    allocator.free(pt)
    assert registry.stats.inactive_events == 1
    assert registry.stats.active_events == 1
