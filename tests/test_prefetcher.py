"""The chaining prefetcher: emission, chaining, windows, resync.

Tests teach the correlation tables by replaying a (kernel, faults)
schedule through the correlator, then attach a fresh prefetcher and assert
on the commands it produces — separating learning from prediction.
"""

import pytest

from repro.core.block_table import BlockTableConfig
from repro.core.correlator import Correlator
from repro.core.prefetcher import ChainingPrefetcher


def teach(schedule, repeats=3):
    """Build a correlator whose tables learned ``schedule``."""
    cor = Correlator(BlockTableConfig(num_rows=64, assoc=2, num_succs=4))
    for _ in range(repeats):
        for exec_id, blocks in schedule:
            cor.on_kernel_launch(exec_id)
            for blk in blocks:
                cor.on_fault(blk)
    return cor


def replay_launch(cor, pf, exec_id):
    cor.on_kernel_launch(exec_id)
    pf.on_kernel_launch(exec_id)


def replay_fault(cor, pf, block):
    cor.on_fault(block)
    pf.restart_from_fault(block)


def drain(pf, limit=100):
    out = []
    while len(out) < limit:
        cmd = pf.pop_command()
        if cmd is None:
            break
        out.append(cmd)
    return out


SCHEDULE = [(1, [10, 11]), (2, [20, 21]), (3, [30]), (4, [40])]


def test_degree_must_be_positive():
    cor = teach(SCHEDULE)
    with pytest.raises(ValueError):
        ChainingPrefetcher(cor, 0)


def test_chain_replays_learned_sequence():
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=8)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    cmds = drain(pf)
    assert set(cmds) >= {10, 11, 20, 21, 30, 40}


def test_chaining_emits_kernels_in_order():
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=8)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    cmds = drain(pf)
    assert cmds.index(20) > cmds.index(11)
    assert cmds.index(30) > cmds.index(21)


def test_window_limits_lookahead():
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=1)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    cmds = drain(pf)
    assert 20 in cmds       # one kernel ahead allowed
    assert 30 not in cmds   # two ahead is beyond the window
    assert 40 not in cmds


def test_window_slides_with_kernel_progress():
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=1)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    drain(pf)
    pf.on_kernel_end()
    replay_launch(cor, pf, 2)
    assert 30 in drain(pf)


def test_launch_alone_revives_dead_chain():
    """Steady state: zero faults, launches keep the chain running."""
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=8)
    replay_launch(cor, pf, 1)
    cmds = drain(pf)
    assert 10 in cmds and 11 in cmds


def test_on_chain_fault_does_not_reset():
    cor = teach([(1, [10, 11, 12])])
    pf = ChainingPrefetcher(cor, degree=4)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    emitted = pf.commands_emitted
    replay_fault(cor, pf, 11)  # predicted block: chain must stay put
    assert pf.commands_emitted == emitted


def test_off_chain_fault_restarts_from_fault():
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=4)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 99)  # unknown block: chain diverged
    assert 99 in pf.protected_blocks()
    # The faulted block seeds the new chain but is NOT emitted as a
    # prefetch command — the demand fault is already migrating it.
    assert 99 not in drain(pf)


def test_fault_restart_emits_successors_not_faulted_block():
    """Chain restart prefetches what comes *after* the fault, not the fault.

    The prefetcher's launch hook is deliberately skipped here so the only
    emission source is ``restart_from_fault`` itself — the launch path
    legitimately emits the kernel's own working set (block 10 included).
    """
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=4)
    cor.on_kernel_launch(1)
    replay_fault(cor, pf, 10)
    cmds = drain(pf)
    assert 10 not in cmds       # already migrating via the fault path
    assert {11, 20, 21} <= set(cmds)


def test_protected_blocks_cover_window():
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=2)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    drain(pf)
    assert {10, 11, 20, 21, 30} <= pf.protected_blocks()


def test_protection_retires_as_kernels_end():
    # A long loop so the chain cannot wrap around to kernel 1 within the
    # look-ahead window (cyclic workloads legitimately re-predict early
    # blocks near the iteration boundary).
    schedule = [(k, [k * 10]) for k in range(1, 7)]
    cor = teach(schedule)
    pf = ChainingPrefetcher(cor, degree=2)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    drain(pf)
    pf.on_kernel_end()
    replay_launch(cor, pf, 2)
    pf.on_kernel_end()
    replay_launch(cor, pf, 3)
    assert 10 not in pf.protected_blocks()


def test_shared_block_stays_protected_until_last_use():
    """A block used by two nearby kernels keeps protection through both."""
    cor = teach([(1, [10]), (2, [10, 20])])
    pf = ChainingPrefetcher(cor, degree=4)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    drain(pf)
    pf.on_kernel_end()  # kernel 1 done; kernel 2 still expects block 10
    assert 10 in pf.protected_blocks()


def test_push_back_requeues_at_front():
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=4)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    first = pf.pop_command()
    pf.push_back(first)
    assert pf.pop_command() == first


def test_chain_breaks_counted_on_prediction_failure():
    cor = teach([(1, [10])], repeats=1)  # no next-kernel record exists
    pf = ChainingPrefetcher(cor, degree=4)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    drain(pf)
    assert pf.chain_breaks >= 1


def test_commands_not_duplicated_within_window():
    cor = teach(SCHEDULE)
    pf = ChainingPrefetcher(cor, degree=8)
    replay_launch(cor, pf, 1)
    replay_fault(cor, pf, 10)
    cmds = drain(pf)
    assert len(cmds) == len(set(cmds))
