"""The subsystem wall profiler: attribution, seams, and neutrality.

Two load-bearing invariants. First, the exclusive accounting: enter/exit
charges time to the subsystem on top of the stack, so nested seams never
double-count and the per-subsystem exclusive times sum *exactly* to the
profiled window (checked here with a fake clock, and by
``validate_profile`` on real runs). Second, neutrality: installing the
profiler must not change any simulated metric bit-for-bit —
``profile_request`` runs every cell twice and raises otherwise.
"""

import json

import pytest

from repro.api import RunRequest
from repro.bench.manifest import Scenario
from repro.core.block_table import BlockCorrelationTable
from repro.harness.experiment import build_policy, calibrate_system
from repro.obs.prof import (
    PROFILE_SCHEMA_VERSION,
    SUB_OTHER,
    ProfileError,
    WallProfiler,
    format_profile,
    profile_request,
    profile_scenario,
    speedscope_document,
    validate_profile,
    validate_speedscope,
)

SYSTEM = calibrate_system("mobilenet")

#: One tiny scenario profiled once per module: two UM cells plus one
#: tensor-swap policy that must land in ``skipped``, not ``cells``.
TINY_SCENARIO = Scenario(
    name="prof-tiny",
    model="mobilenet",
    paper_batch=3072,
    policies=("um", "deepum", "lms"),
    warmup_iterations=1,
    measure_iterations=1,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# ------------------------------------------------------- attribution core

def test_exclusive_attribution_with_nesting():
    clock = FakeClock()
    prof = WallProfiler(clock=clock)
    prof.start()
    clock.advance(1.0)          # unattributed -> other
    prof.enter("fault-handler")
    clock.advance(2.0)          # fault-handler exclusive
    prof.enter("interconnect")  # nested seam
    clock.advance(3.0)          # interconnect exclusive, NOT fault-handler
    prof.exit()
    clock.advance(1.5)          # back in fault-handler
    prof.exit()
    clock.advance(0.5)          # tail -> other
    prof.stop()

    assert prof.exclusive == {
        "other": 1.5,
        "fault-handler": 3.5,
        "interconnect": 3.0,
    }
    assert prof.calls == {"fault-handler": 1, "interconnect": 1}
    assert sum(prof.exclusive.values()) == prof.window_seconds == 8.0


def test_enter_exit_are_noops_outside_the_window():
    clock = FakeClock()
    prof = WallProfiler(clock=clock)
    prof.enter("tables")  # before start: ignored
    prof.exit()
    prof.start()
    clock.advance(1.0)
    prof.stop()
    prof.enter("tables")  # after stop: ignored
    clock.advance(5.0)
    assert prof.exclusive == {SUB_OTHER: 1.0}
    assert prof.calls == {}
    assert prof.window_seconds == 1.0


def test_stop_clears_an_unwound_stack():
    # An exception that unwinds past wrapped frames can leave entries on
    # the stack; stop() must still close the window and charge the top.
    clock = FakeClock()
    prof = WallProfiler(clock=clock)
    prof.start()
    prof.enter("migration")
    clock.advance(2.0)
    prof.stop()
    assert prof.exclusive["migration"] == 2.0
    assert sum(prof.exclusive.values()) == prof.window_seconds


def test_window_lifecycle_errors():
    prof = WallProfiler(clock=FakeClock())
    with pytest.raises(ProfileError):
        prof.window_seconds
    with pytest.raises(ProfileError):
        prof.stop()
    prof.start()
    with pytest.raises(ProfileError):
        prof.start()


def test_breakdown_reports_exclusive_seconds_and_calls():
    clock = FakeClock()
    prof = WallProfiler(clock=clock)
    prof.start()
    prof.enter("allocator")
    clock.advance(1.0)
    prof.exit()
    prof.enter("allocator")
    clock.advance(2.0)
    prof.exit()
    prof.stop()
    assert prof.breakdown()["allocator"] == {
        "exclusive_seconds": 3.0, "calls": 2}


# ------------------------------------------------------ seam installation

def test_install_wraps_and_uninstall_restores_exactly():
    facade = build_policy("deepum", SYSTEM)
    engine = facade.engine
    link = engine.link
    original_execute = engine.execute_kernel
    original_occupy = type(link).__dict__["occupy"]
    original_record = BlockCorrelationTable.__dict__["record_successor"]

    prof = WallProfiler()
    count = prof.install(facade)
    assert count > 0
    # Instance seam: shadowed through the instance dict, class untouched.
    assert "execute_kernel" in vars(engine)
    assert engine.execute_kernel.__wrapped__ == original_execute
    # Slotted object (PCIe link dataclass): wrapped at class level.
    assert type(link).__dict__["occupy"].__wrapped__ is original_occupy
    # Lazily-created correlation tables: wrapped at class level too.
    wrapped_record = BlockCorrelationTable.__dict__["record_successor"]
    assert wrapped_record.__wrapped__ is original_record

    with pytest.raises(ProfileError):
        prof.install(facade)  # double install would lose originals

    prof.uninstall()
    assert "execute_kernel" not in vars(engine)
    assert engine.execute_kernel == original_execute
    assert type(link).__dict__["occupy"] is original_occupy
    assert BlockCorrelationTable.__dict__["record_successor"] \
        is original_record
    prof.uninstall()  # idempotent: safe inside finally blocks


def test_install_rejects_tensor_swap_facades():
    facade = build_policy("lms", SYSTEM)
    with pytest.raises(TypeError):
        WallProfiler().install(facade)


# ------------------------------------------------- profiled runs (shared)

@pytest.fixture(scope="module")
def tiny_profile():
    return profile_scenario(TINY_SCENARIO)


def test_profile_scenario_shape_and_validation(tiny_profile):
    assert tiny_profile["profile_schema_version"] == PROFILE_SCHEMA_VERSION
    assert tiny_profile["scenario"] == "prof-tiny"
    assert set(tiny_profile["cells"]) == {
        "mobilenet@3072/um", "mobilenet@3072/deepum"}
    assert validate_profile(tiny_profile) is tiny_profile


def test_profile_cells_are_neutral_and_sum_to_total(tiny_profile):
    for name, cell in tiny_profile["cells"].items():
        assert cell["neutral"] is True, name
        summed = sum(sub["exclusive_seconds"]
                     for sub in cell["subsystems"].values())
        assert summed == pytest.approx(cell["total_seconds"], abs=1e-6)
        # The profiled pass actually exercised the seams.
        assert any(sub["calls"] > 0 for sub in cell["subsystems"].values())


def test_tensor_swap_policies_are_skipped_not_failed(tiny_profile):
    skipped = tiny_profile["skipped"]
    assert "mobilenet@3072/lms" in skipped
    assert "tensor-swap" in skipped["mobilenet@3072/lms"]


def test_speedscope_export_is_valid(tiny_profile):
    flame = speedscope_document(tiny_profile)
    assert validate_speedscope(flame) is flame
    assert len(flame["profiles"]) == len(tiny_profile["cells"])
    # Round-trips through JSON (what `repro profile --speedscope` writes).
    assert validate_speedscope(json.loads(json.dumps(flame)))


def test_format_profile_ranks_subsystems(tiny_profile):
    text = format_profile(tiny_profile)
    assert "mobilenet@3072/deepum" in text
    assert "subsystem" in text
    assert "skipped" in text


def test_profile_request_neutrality_contract():
    request = RunRequest(
        model="mobilenet", policy="deepum", batch=64, scale=0.5,
        warmup_iterations=1, measure_iterations=1, seed=0, system=SYSTEM)
    doc = profile_request(request)
    assert doc["neutral"] is True
    assert doc["cell"] == "mobilenet@64/deepum"
    assert doc["total_seconds"] > 0
    assert doc["reference_seconds"] > 0
    assert set(doc["sim"])  # the snapshot rides along for the record


def test_profile_request_sampling_captures_repro_stacks():
    request = RunRequest(
        model="mobilenet", policy="um", batch=64, scale=0.5,
        warmup_iterations=1, measure_iterations=1, seed=0, system=SYSTEM)
    doc = profile_request(request, sample=True, sample_interval=0.001)
    samples = doc["samples"]
    assert samples["interval_seconds"] == 0.001
    if samples["samples"]:  # tiny cells may finish between ticks
        top = samples["stacks"][0]
        assert top["count"] >= 1
        assert all(frame.startswith("repro") for frame in top["frames"])


def test_profile_scenario_rejects_unknown_names():
    with pytest.raises(KeyError):
        profile_scenario("no-such-scenario")


# ------------------------------------------------------ validators reject

def _corrupt(doc, mutate):
    clone = json.loads(json.dumps(doc))
    mutate(clone)
    return clone


def test_validate_profile_rejects_bad_documents(tiny_profile):
    cell = next(iter(tiny_profile["cells"]))

    def break_total(doc):
        doc["cells"][cell]["total_seconds"] += 1.0  # sums no longer match

    def break_neutral(doc):
        doc["cells"][cell]["neutral"] = False

    def break_version(doc):
        doc["profile_schema_version"] = 99

    for mutate in (break_total, break_neutral, break_version):
        with pytest.raises(ValueError):
            validate_profile(_corrupt(tiny_profile, mutate))
    with pytest.raises(ValueError):
        validate_profile("not a dict")


def test_validate_speedscope_rejects_bad_documents(tiny_profile):
    flame = speedscope_document(tiny_profile)

    def break_weights(doc):
        doc["profiles"][0]["weights"].append(1.0)  # samples/weights differ

    def break_frame_index(doc):
        doc["profiles"][0]["samples"][0] = [len(doc["shared"]["frames"])]

    for mutate in (break_weights, break_frame_index):
        with pytest.raises(ValueError):
            validate_speedscope(_corrupt(flame, mutate))
