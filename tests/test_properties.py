"""Property-based tests (hypothesis) on the core data structures."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import PAGE_SIZE, UM_BLOCK_SIZE
from repro.core.block_table import BlockCorrelationTable, BlockTableConfig
from repro.core.correlator import Correlator
from repro.core.exec_table import ExecutionCorrelationTable, ExecutionIDTable
from repro.sim.address import blocks_spanned, pages_spanned
from repro.sim.gpu import GPUMemory
from repro.sim.um_space import UnifiedMemorySpace
from repro.torchsim.allocator import CachingAllocator
from repro.torchsim.backend import UMBackend


# --------------------------------------------------------------------- #
# address arithmetic
# --------------------------------------------------------------------- #

@given(st.integers(0, 1 << 40), st.integers(1, 1 << 24))
def test_pages_cover_range_exactly(addr, nbytes):
    pages = list(pages_spanned(addr, nbytes))
    assert pages[0] * PAGE_SIZE <= addr
    assert (pages[-1] + 1) * PAGE_SIZE >= addr + nbytes
    assert pages == sorted(set(pages))


@given(st.integers(0, 1 << 40), st.integers(1, 1 << 26))
def test_blocks_cover_range_exactly(addr, nbytes):
    blocks = list(blocks_spanned(addr, nbytes))
    assert blocks[0] * UM_BLOCK_SIZE <= addr
    assert (blocks[-1] + 1) * UM_BLOCK_SIZE >= addr + nbytes
    expected = (addr + nbytes - 1) // UM_BLOCK_SIZE - addr // UM_BLOCK_SIZE + 1
    assert len(blocks) == expected


# --------------------------------------------------------------------- #
# caching allocator invariants
# --------------------------------------------------------------------- #

@st.composite
def alloc_programs(draw):
    """A sequence of sized allocations and (by index) frees."""
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 4 << 20)),
            st.tuples(st.just("free"), st.integers(0, 63)),
        ),
        min_size=1, max_size=60,
    ))
    return ops


@settings(max_examples=60, deadline=None)
@given(alloc_programs())
def test_allocator_blocks_never_overlap(ops):
    alloc = CachingAllocator(UMBackend(um=UnifiedMemorySpace(),
                                       host_capacity=1 << 50))
    live = []
    for op, arg in ops:
        if op == "alloc":
            live.append(alloc.allocate(arg))
        elif live:
            blk = live.pop(arg % len(live))
            alloc.free(blk)
        # Invariant: live (active) blocks never overlap.
        spans = sorted((b.addr, b.addr + b.size) for b in live)
        for (a1, e1), (a2, _) in zip(spans, spans[1:]):
            assert e1 <= a2
    # Invariant: accounting matches the live set.
    assert alloc.stats.allocated_bytes == sum(b.size for b in live)
    assert alloc.stats.allocated_bytes <= alloc.stats.reserved_bytes


@settings(max_examples=40, deadline=None)
@given(alloc_programs())
def test_allocator_segment_blocks_tile_segments(ops):
    """Every segment is exactly tiled by its (active + inactive) blocks."""
    alloc = CachingAllocator(UMBackend(um=UnifiedMemorySpace(),
                                       host_capacity=1 << 50))
    live = []
    for op, arg in ops:
        if op == "alloc":
            live.append(alloc.allocate(arg))
        elif live:
            alloc.free(live.pop(arg % len(live)))
    for seg in alloc.iter_segments():
        cursor = seg.addr
        for blk in seg.blocks:
            assert blk.addr == cursor
            cursor += blk.size
        assert cursor == seg.addr + seg.size


@settings(max_examples=40, deadline=None)
@given(alloc_programs())
def test_allocator_free_lists_hold_only_inactive(ops):
    alloc = CachingAllocator(UMBackend(um=UnifiedMemorySpace(),
                                       host_capacity=1 << 50))
    live = []
    for op, arg in ops:
        if op == "alloc":
            live.append(alloc.allocate(arg))
        elif live:
            alloc.free(live.pop(arg % len(live)))
    for pool in (alloc.small_pool, alloc.large_pool):
        for blk in pool:
            assert not blk.active


# --------------------------------------------------------------------- #
# GPU residency invariants
# --------------------------------------------------------------------- #

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["admit", "remove"]),
                          st.integers(0, 15)), max_size=80))
def test_gpu_used_bytes_matches_resident_set(ops):
    um = UnifiedMemorySpace()
    gpu = GPUMemory(capacity_bytes=8 * UM_BLOCK_SIZE)
    clock = 0.0
    for op, idx in ops:
        blk = um.block(idx)
        if blk.populated_pages == 0:
            blk.populate(512)
        if op == "admit":
            if gpu.has_room_for(blk) or gpu.is_resident(blk):
                gpu.admit(blk, clock)
                clock += 1.0
        else:
            gpu.remove(blk)
        assert gpu.used_bytes == sum(
            b.populated_bytes for b in gpu.resident.values()
        )
        assert 0 <= gpu.used_bytes <= gpu.capacity_bytes
        times = [b.last_migrated_at for b in gpu.migration_order()]
        assert times == sorted(times)


# --------------------------------------------------------------------- #
# correlation tables
# --------------------------------------------------------------------- #

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                min_size=1, max_size=200),
       st.integers(1, 4), st.integers(1, 6))
def test_block_table_respects_geometry(pairs, assoc, num_succs):
    table = BlockCorrelationTable(
        BlockTableConfig(num_rows=4, assoc=assoc, num_succs=num_succs)
    )
    for a, b in pairs:
        table.record_successor(a, b)
    rows = {}
    for blk in table.iter_blocks():
        rows.setdefault(blk % 4, []).append(blk)
        assert len(table.successors(blk)) <= num_succs
        assert blk not in table.successors(blk)
    for members in rows.values():
        assert len(members) <= assoc


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 12), min_size=4, max_size=120))
def test_exec_table_predictions_come_from_observations(launches):
    table = ExecutionCorrelationTable()
    hist = [-1, -1, -1, -1]
    observed = set()
    for eid in launches:
        prev = hist[-1]
        if prev != -1:
            table.record((hist[0], hist[1], hist[2]), prev, eid)
            observed.add(((hist[0], hist[1], hist[2]), prev))
        hist = hist[1:] + [eid]
    # Every prediction the table makes corresponds to a real observation.
    for (h, cur) in observed:
        assert table.predict_next(h, cur) is not None


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=4), min_size=1, max_size=50))
def test_exec_id_assignment_is_injective(signatures):
    table = ExecutionIDTable()
    ids = {}
    for sig in signatures:
        eid = table.assign(sig)
        if sig in ids:
            assert ids[sig] == eid
        ids[sig] = eid
    assert len(set(ids.values())) == len(ids)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 6),
                          st.lists(st.integers(0, 40), max_size=5)),
                min_size=2, max_size=60))
def test_correlator_never_crashes_and_sizes_monotonic(schedule):
    cor = Correlator(BlockTableConfig(num_rows=8, assoc=2, num_succs=3))
    last_size = 0
    for exec_id, blocks in schedule:
        cor.on_kernel_launch(exec_id)
        for blk in blocks:
            cor.on_fault(blk)
        size = cor.table_size_bytes
        assert size >= last_size  # tables only grow
        last_size = size
