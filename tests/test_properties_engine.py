"""Property-based tests on the engine and the full DeepUM stack."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DeepUMConfig, GPUSpec, HostSpec, SystemConfig
from repro.constants import GiB, UM_BLOCK_SIZE
from repro.core.deepum import DeepUM
from repro.sim.engine import BlockAccess, KernelExecution, UMSimulator
from repro.sim.um_space import BlockLocation


def small_system(capacity_blocks: int) -> SystemConfig:
    return SystemConfig(
        gpu=GPUSpec(memory_bytes=capacity_blocks * UM_BLOCK_SIZE),
        host=HostSpec(memory_bytes=1 * GiB),
    )


# One kernel = (exec id, [block indices touched], compute microseconds).
kernel_streams = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.lists(st.integers(0, 20), min_size=0, max_size=6),
        st.integers(0, 2000),
    ),
    min_size=1,
    max_size=40,
)


def run_stream(engine: UMSimulator, stream) -> None:
    for exec_id, blocks, compute_us in stream:
        accesses = []
        for idx in blocks:
            blk = engine.um.block(idx)
            if blk.populated_pages == 0:
                blk.populate(512)
                blk.location = BlockLocation.CPU
            accesses.append(BlockAccess(block=blk, pages=blk.populated_pages))
        engine.execute_kernel(KernelExecution(
            payload=("k", exec_id), accesses=accesses,
            compute_time=compute_us * 1e-6,
        ))


@settings(max_examples=40, deadline=None)
@given(kernel_streams, st.integers(2, 8))
def test_engine_invariants_under_random_streams(stream, capacity_blocks):
    engine = UMSimulator(small_system(capacity_blocks))
    run_stream(engine, stream)
    engine.finish()
    # Residency accounting is exact and never exceeds capacity.
    assert engine.gpu.used_bytes == sum(
        b.populated_bytes for b in engine.gpu.resident.values())
    assert engine.gpu.used_bytes <= engine.gpu.capacity_bytes
    # Every touched block ends up resident or on the CPU, never lost.
    for blk in engine.um.iter_blocks():
        if blk.populated_pages:
            assert blk.location in (BlockLocation.GPU, BlockLocation.CPU,
                                    BlockLocation.UNPOPULATED)
            assert engine.gpu.is_resident(blk) == \
                (blk.location is BlockLocation.GPU)
    # Time only moves forward and the link is never busier than elapsed.
    assert engine.now >= 0.0
    assert engine.link.busy_time <= engine.now + 1e-9
    # Conservation: what moved in either stayed or moved out.
    s = engine.stats
    assert s.migrated_in_bytes >= 0
    assert s.evicted_bytes + engine.gpu.used_bytes \
        >= s.migrated_in_bytes - s.invalidated_bytes - engine.gpu.capacity_bytes


@settings(max_examples=25, deadline=None)
@given(kernel_streams, st.integers(2, 8), st.integers(1, 16))
def test_deepum_stack_never_crashes_and_accounts(stream, capacity_blocks,
                                                 degree):
    deepum = DeepUM(small_system(capacity_blocks),
                    DeepUMConfig(prefetch_degree=degree))
    engine = deepum.engine
    for exec_id, blocks, compute_us in stream:
        accesses = []
        for idx in blocks:
            blk = engine.um.block(idx)
            if blk.populated_pages == 0:
                blk.populate(512)
                blk.location = BlockLocation.CPU
            accesses.append(BlockAccess(block=blk, pages=blk.populated_pages))
        deepum.driver.notify_execution_id(exec_id, engine.now)
        engine.execute_kernel(KernelExecution(
            payload=("k", exec_id), accesses=accesses,
            compute_time=compute_us * 1e-6,
        ))
    engine.finish()
    assert engine.gpu.used_bytes <= engine.gpu.capacity_bytes
    assert engine.gpu.used_bytes == sum(
        b.populated_bytes for b in engine.gpu.resident.values())
    # Protected window only references known blocks.
    for idx in deepum.driver.prefetcher.protected_blocks():
        assert idx >= 0
    # Replaying the identical stream is deterministic.
    deepum2 = DeepUM(small_system(capacity_blocks),
                     DeepUMConfig(prefetch_degree=degree))
    for exec_id, blocks, compute_us in stream:
        accesses = []
        for idx in blocks:
            blk = deepum2.engine.um.block(idx)
            if blk.populated_pages == 0:
                blk.populate(512)
                blk.location = BlockLocation.CPU
            accesses.append(BlockAccess(block=blk, pages=blk.populated_pages))
        deepum2.driver.notify_execution_id(exec_id, deepum2.engine.now)
        deepum2.engine.execute_kernel(KernelExecution(
            payload=("k", exec_id), accesses=accesses,
            compute_time=compute_us * 1e-6,
        ))
    deepum2.engine.finish()
    assert deepum2.engine.now == engine.now
    assert deepum2.engine.stats.page_faults == engine.stats.page_faults
