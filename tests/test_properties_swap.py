"""Property-based tests on the tensor-swap substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.tensor_swap import (
    SwapPlanner,
    TensorSwapManager,
    TensorSwapOOM,
)
from repro.config import GPUSpec, HostSpec, SystemConfig
from repro.constants import MiB
from repro.torchsim.backend import RawGPUBackend
from repro.torchsim.context import Device
from repro.torchsim.kernels import KernelLaunch


class AnyPlanner(SwapPlanner):
    pass


# A program is a list of steps: ("alloc", kb) | ("use", slot) | ("free", slot)
programs = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(64, 2048)),
        st.tuples(st.just("use"), st.integers(0, 31)),
        st.tuples(st.just("free"), st.integers(0, 31)),
    ),
    min_size=1, max_size=60,
)

planner_knobs = st.builds(
    dict,
    lookahead=st.integers(0, 4),
    belady_victims=st.booleans(),
    eager_swapout=st.booleans(),
    recompute_cheap=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(programs, planner_knobs, st.integers(4, 16))
def test_swap_manager_invariants(program, knobs, gpu_mb):
    planner = AnyPlanner()
    for key, value in knobs.items():
        setattr(planner, key, value)
    system = SystemConfig(gpu=GPUSpec(memory_bytes=gpu_mb * MiB),
                          host=HostSpec(memory_bytes=256 * MiB))
    manager = TensorSwapManager(system, planner)
    device = Device.with_backend(RawGPUBackend(capacity=gpu_mb * MiB), manager)
    live: list = []
    last_now = 0.0
    try:
        for op, arg in program:
            if op == "alloc":
                live.append(device.empty((arg * 256,)))  # arg KB
            elif op == "use" and live:
                t = live[arg % len(live)]
                device.submit(KernelLaunch(
                    name=f"k{t.uid % 7}", arg_signature=(t.shape,),
                    reads=[t], writes=[t], flops=1e5,
                ))
            elif op == "free" and live:
                live.pop(arg % len(live)).release()
            # Invariants after every step:
            assert manager.host_bytes >= 0
            assert manager.host_bytes <= manager.host_capacity
            assert manager.now >= last_now
            last_now = manager.now
            backend = device.allocator.backend
            assert 0 <= backend.used <= backend.capacity
            # Residency flags agree with storage attachment for live tensors.
            for t in live:
                rec = manager._tensors.get(t.storage.uid)
                if rec is not None and rec.resident:
                    assert t.storage.block is not None
    except TensorSwapOOM:
        pass  # legitimate outcome for oversized programs
    # Final consistency: stats are internally coherent.
    stats = manager.stats
    assert stats.bytes_in <= stats.swap_ins * 2048 * MiB
    assert stats.swap_outs >= 0 and stats.swap_ins >= 0


@settings(max_examples=20, deadline=None)
@given(programs, st.integers(1, 99))
def test_swap_manager_deterministic_under_seed(program, seed):
    def run():
        system = SystemConfig(gpu=GPUSpec(memory_bytes=8 * MiB),
                              host=HostSpec(memory_bytes=256 * MiB))
        planner = AnyPlanner()
        planner.plan_error_rate = 0.2
        manager = TensorSwapManager(system, planner, seed=seed)
        device = Device.with_backend(RawGPUBackend(capacity=8 * MiB), manager)
        live: list = []
        try:
            for op, arg in program:
                if op == "alloc":
                    live.append(device.empty((arg * 64,)))
                elif op == "use" and live:
                    t = live[arg % len(live)]
                    device.submit(KernelLaunch(
                        name="k", arg_signature=(t.shape,),
                        reads=[t], writes=[t], flops=1e5,
                    ))
                elif op == "free" and live:
                    live.pop(arg % len(live)).release()
        except TensorSwapOOM:
            pass
        return (manager.now, manager.stats.swap_ins, manager.stats.swap_outs)

    assert run() == run()
