"""Steady-state iteration replay must be invisible in simulated output."""

import pytest

from repro.core.replay import STABLE_PAIRS, IterationReplayer, ReplayDivergence
from repro.harness import calibrate_system
from repro.harness.experiment import build_policy
from repro.models.registry import get_model_config

MODEL = "mobilenet"
BATCH = 3072
ITERS = 8


def _run(policy, *, replay):
    facade = build_policy(policy, calibrate_system(MODEL))
    if not replay:
        facade.device.replayer = None
    cfg = get_model_config(MODEL)
    workload = cfg.build(facade.device, cfg.sim_batch(BATCH), scale=cfg.sim_scale)
    workload.run(ITERS)
    return facade, workload


@pytest.mark.parametrize("policy", ["um", "deepum", "ideal"])
def test_replay_matches_direct_execution(policy):
    direct, wl_direct = _run(policy, replay=False)
    replayed, wl_replay = _run(policy, replay=True)
    assert replayed.device.replayer.iterations_replayed > 0
    assert replayed.elapsed() == direct.elapsed()
    assert replayed.engine.stats.page_faults == direct.engine.stats.page_faults
    assert replayed.engine.link.bytes_to_gpu == direct.engine.link.bytes_to_gpu
    assert replayed.engine.metrics.prefetched_blocks == \
        direct.engine.metrics.prefetched_blocks
    assert replayed.device.kernel_count == direct.device.kernel_count
    assert wl_replay.iterations_run == wl_direct.iterations_run == ITERS


def test_replay_engages_after_stable_pairs():
    facade, _ = _run("um", replay=True)
    replayer = facade.device.replayer
    # Stream freezes after STABLE_PAIRS consecutive identical iterations;
    # the first iteration (initial allocations) may differ from steady
    # state, so recording lasts at most 2 + STABLE_PAIRS iterations.
    assert ITERS - (2 + STABLE_PAIRS) <= replayer.iterations_replayed
    assert replayer.iterations_replayed <= ITERS - (1 + STABLE_PAIRS)


def test_replay_extends_across_separate_run_calls():
    facade = build_policy("um", calibrate_system(MODEL))
    cfg = get_model_config(MODEL)
    workload = cfg.build(facade.device, cfg.sim_batch(BATCH), scale=cfg.sim_scale)
    workload.run(4)
    before = facade.device.replayer.iterations_replayed
    workload.run(3)
    assert facade.device.replayer.iterations_replayed == before + 3
    assert workload.iterations_run == 7


def test_replayer_is_wired_by_um_facades():
    for policy in ("um", "deepum", "ideal"):
        facade = build_policy(policy, calibrate_system(MODEL))
        assert isinstance(facade.device.replayer, IterationReplayer)


def test_divergence_is_a_hard_error():
    assert issubclass(ReplayDivergence, RuntimeError)
