"""Report formatting helpers."""

import math

from repro.harness.report import format_table, geomean, speedup_table


def test_format_table_basic():
    out = format_table(["a", "bb"], [[1, 2.5], [30, None]])
    lines = out.splitlines()
    assert "a" in lines[0] and "bb" in lines[0]
    assert "2.50" in out
    assert "-" in lines[-1]  # None rendered as dash


def test_format_table_title():
    out = format_table(["x"], [[1]], title="Table 1")
    assert out.splitlines()[0] == "Table 1"


def test_format_table_large_numbers_grouped():
    out = format_table(["n"], [[123456.0]])
    assert "123,456" in out


def test_geomean_exact():
    assert geomean([1.0, 4.0]) == 2.0
    assert geomean([2.0, 2.0, 2.0]) == 2.0


def test_geomean_skips_invalid():
    assert geomean([2.0, None, 0.0, 8.0]) == 4.0


def test_geomean_empty_is_nan():
    assert math.isnan(geomean([]))


def test_speedup_table_computes_ratios():
    base = {("m", 1): 10.0, ("m", 2): 20.0}
    systems = {"fast": {("m", 1): 5.0, ("m", 2): 10.0},
               "slow": {("m", 1): 20.0, ("m", 2): None}}
    out = speedup_table(base, systems)
    assert "2.00" in out    # fast speedup
    assert "0.50" in out    # slow speedup
    assert "GMEAN" in out
