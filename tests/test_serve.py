"""Serving mode: ServeSpec payloads, arrival traces, hints, the loop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import KIND_EXPERIMENT, KIND_SERVE, RunRequest, execute
from repro.config import SystemConfig
from repro.serve import ARRIVAL_KINDS, ServeSpec
from repro.serve.arrivals import generate_arrivals
from repro.serve.session import percentile
from repro.sim.um_space import ADVISE_STICKY, MemAdvise, advice_labels

#: One cheap serve cell (~1s): small trace, auto rate/SLO.
TINY_SERVE = dict(scenario="dlrm", requests=4)


def serve_request(policy="deepum", *, spec=None, **req_kw) -> RunRequest:
    spec = spec if spec is not None else ServeSpec(**TINY_SERVE)
    req_kw.setdefault("warmup_iterations", 1)
    req_kw.setdefault("model", "dlrm")
    return RunRequest(policy=policy, kind=KIND_SERVE, serve=spec, **req_kw)


# ------------------------------------------------------------- payloads

serve_specs = st.builds(
    ServeSpec,
    scenario=st.sampled_from(("dlrm", "gpt2-decode")),
    arrivals=st.sampled_from(ARRIVAL_KINDS),
    requests=st.integers(1, 500),
    rate=st.one_of(st.none(), st.floats(0.01, 1e4)),
    slo_ms=st.one_of(st.none(), st.floats(0.01, 1e6)),
    hints=st.booleans(),
    arrival_seed=st.integers(0, 2 ** 31),
    burst_factor=st.floats(1.0, 64.0),
    decode_tokens=st.integers(1, 64),
)

LEGACY_PAYLOAD_KEYS = sorted([
    "model", "policy", "batch", "scale", "warmup_iterations",
    "measure_iterations", "seed", "deepum_config", "system",
])


@settings(max_examples=60, deadline=None)
@given(serve_specs)
def test_serve_spec_round_trips(spec):
    assert ServeSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=60, deadline=None)
@given(
    model=st.sampled_from(("mobilenet", "dlrm", "gpt2-l")),
    policy=st.sampled_from(("um", "deepum", "lms")),
    batch=st.one_of(st.none(), st.integers(1, 1 << 16)),
    seed=st.integers(0, 1 << 16),
    warmup=st.integers(0, 50),
    measure=st.integers(0, 50),
)
def test_experiment_payload_unchanged_by_serve_extension(
        model, policy, batch, seed, warmup, measure):
    """Old cache keys and journals depend on this staying byte-stable."""
    req = RunRequest(model=model, policy=policy, batch=batch, seed=seed,
                     warmup_iterations=warmup, measure_iterations=measure)
    doc = req.to_dict()
    assert sorted(doc) == LEGACY_PAYLOAD_KEYS
    assert "kind" not in doc and "serve" not in doc
    again = RunRequest.from_dict(doc)
    assert again == req
    assert again.kind == KIND_EXPERIMENT and again.serve is None


@settings(max_examples=60, deadline=None)
@given(serve_specs, st.integers(0, 7))
def test_serve_request_round_trips(spec, seed):
    req = RunRequest(model="dlrm", kind=KIND_SERVE, serve=spec, seed=seed)
    doc = req.to_dict()
    assert doc["kind"] == KIND_SERVE
    again = RunRequest.from_dict(doc)
    assert again == req and again.serve == spec


def test_request_kind_is_validated():
    with pytest.raises(ValueError, match="unknown request kind"):
        RunRequest(model="dlrm", kind="training")
    with pytest.raises(ValueError, match="exactly when"):
        RunRequest(model="dlrm", kind=KIND_SERVE)  # spec missing
    with pytest.raises(ValueError, match="exactly when"):
        RunRequest(model="dlrm", serve=ServeSpec(**TINY_SERVE))


def test_serve_spec_is_validated():
    with pytest.raises(ValueError):
        ServeSpec(scenario="dlrm", arrivals="uniform")
    with pytest.raises(ValueError):
        ServeSpec(scenario="dlrm", requests=0)
    with pytest.raises(ValueError):
        ServeSpec(scenario="dlrm", rate=-1.0)
    with pytest.raises(ValueError):
        ServeSpec(scenario="dlrm", burst_factor=0.5)


def test_serve_cell_key_names_the_scenario():
    req = serve_request(spec=ServeSpec(scenario="gpt2-decode"), batch=7)
    assert req.cell_key == "serve-gpt2-decode@7/deepum"


# ------------------------------------------------------------- arrivals

@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(ARRIVAL_KINDS),
    n=st.integers(1, 200),
    rate=st.floats(0.1, 1e3),
    seed=st.integers(0, 1 << 31),
)
def test_arrival_traces_are_deterministic_and_ordered(kind, n, rate, seed):
    a = generate_arrivals(kind, n, rate, seed)
    b = generate_arrivals(kind, n, rate, seed)
    assert a == b
    assert len(a) == n
    assert a[0] >= 0.0
    assert all(later >= earlier for earlier, later in zip(a, a[1:]))


def test_arrival_kinds_differ_and_unknown_raises():
    traces = {kind: generate_arrivals(kind, 32, 10.0, 0)
              for kind in ARRIVAL_KINDS}
    assert len({tuple(t) for t in traces.values()}) == len(ARRIVAL_KINDS)
    with pytest.raises(ValueError):
        generate_arrivals("uniform", 8, 1.0, 0)


def test_percentile_is_nearest_rank():
    window = [float(v) for v in range(1, 101)]
    assert percentile(window, 0.50) == 50.0
    assert percentile(window, 0.95) == 95.0
    assert percentile(window, 0.99) == 99.0
    assert percentile(window, 1.00) == 100.0
    assert percentile([7.0], 0.99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 0.5)


# ------------------------------------------------------- hint semantics

def test_advise_sets_block_bits_and_rejects_unknown():
    from repro.sim.um_space import UnifiedMemorySpace

    um = UnifiedMemorySpace()
    alloc = um.allocate(1 << 21)
    blocks = um.advise(alloc.addr, alloc.nbytes, int(MemAdvise.READ_MOSTLY))
    assert blocks and all(b.advice & MemAdvise.READ_MOSTLY for b in blocks)
    um.advise(alloc.addr, alloc.nbytes, int(MemAdvise.ACCESSED_BY))
    assert all(b.advice & MemAdvise.READ_MOSTLY for b in blocks)  # advice ORs
    with pytest.raises(ValueError):
        um.advise(alloc.addr, alloc.nbytes, 1 << 9)


def test_advice_labels_are_stable():
    assert advice_labels(0) == "none"
    assert advice_labels(int(MemAdvise.READ_MOSTLY)) == "READ_MOSTLY"
    both = int(MemAdvise.PREFERRED_LOCATION_CPU | MemAdvise.ACCESSED_BY)
    assert advice_labels(both) == "PREFERRED_LOCATION_CPU|ACCESSED_BY"


def _eviction_stack(capacity_blocks=4):
    from repro.constants import UM_BLOCK_SIZE
    from repro.sim.gpu import GPUMemory
    from repro.sim.um_space import BlockLocation, UnifiedMemorySpace

    um = UnifiedMemorySpace()
    gpu = GPUMemory(capacity_bytes=capacity_blocks * UM_BLOCK_SIZE)

    def admit(idx, now):
        blk = um.block(idx)
        blk.populate(512)
        blk.location = BlockLocation.CPU
        gpu.admit(blk, now)
        return blk

    return um, gpu, admit


class _NoProtection:
    def protected_blocks(self):
        return set()


def test_read_mostly_blocks_are_evicted_last():
    from repro.policies.eviction import ProtectedLRUEvictionPolicy

    um, gpu, admit = _eviction_stack()
    blocks = [admit(i, now=float(i)) for i in range(4)]
    blocks[0].advice |= int(MemAdvise.READ_MOSTLY)  # oldest, but sticky
    policy = ProtectedLRUEvictionPolicy(
        _NoProtection(), prefer_invalidated=True, protect_predicted=True)
    need_all = sum(b.populated_bytes for b in blocks)
    victims = policy.select_victims(gpu, needed_bytes=need_all, now=10.0)
    # Every unadvised block goes before the sticky one, despite LRU order.
    assert [v.index for v in victims] == [1, 2, 3, 0]


def test_cpu_preferred_blocks_are_preferred_demand_victims():
    from repro.policies.eviction import ProtectedLRUEvictionPolicy

    um, gpu, admit = _eviction_stack()
    blocks = [admit(i, now=float(i)) for i in range(4)]
    blocks[3].advice |= int(MemAdvise.PREFERRED_LOCATION_CPU)  # newest
    policy = ProtectedLRUEvictionPolicy(
        _NoProtection(), prefer_invalidated=True, protect_predicted=True)
    victims = policy.select_victims(gpu, needed_bytes=512, now=10.0)
    assert [v.index for v in victims] == [3]


def test_no_hints_keeps_the_pre_hint_victim_order():
    from repro.policies.eviction import ProtectedLRUEvictionPolicy

    um, gpu, admit = _eviction_stack()
    blocks = [admit(i, now=float(i)) for i in range(4)]
    policy = ProtectedLRUEvictionPolicy(
        _NoProtection(), prefer_invalidated=True, protect_predicted=True)
    victims = policy.select_victims(
        gpu, needed_bytes=blocks[0].populated_bytes + 1, now=10.0)
    assert [v.index for v in victims] == [0, 1]


def _preevict_stack(capacity_blocks=4):
    from repro.config import FaultCosts, LinkSpec
    from repro.constants import UM_BLOCK_SIZE
    from repro.core.block_table import BlockTableConfig
    from repro.core.correlator import Correlator
    from repro.core.preevict import PreEvictor
    from repro.core.prefetcher import ChainingPrefetcher
    from repro.sim.fault_handler import DriverFaultHandler
    from repro.sim.gpu import GPUMemory
    from repro.sim.interconnect import PCIeLink
    from repro.sim.um_space import BlockLocation, UnifiedMemorySpace

    um = UnifiedMemorySpace()
    gpu = GPUMemory(capacity_bytes=capacity_blocks * UM_BLOCK_SIZE)
    link = PCIeLink(bandwidth=LinkSpec().bandwidth,
                    latency=LinkSpec().latency)
    handler = DriverFaultHandler(um=um, gpu=gpu, link=link,
                                 costs=FaultCosts())
    cor = Correlator(BlockTableConfig(num_rows=16, assoc=2, num_succs=4))
    pf = ChainingPrefetcher(cor, degree=2)
    pe = PreEvictor(gpu, handler, pf, low_watermark=0.3, batch_blocks=2)

    def admit(idx, now):
        blk = um.block(idx)
        blk.populate(512)
        blk.location = BlockLocation.CPU
        gpu.admit(blk, now)
        return blk

    return um, gpu, pe, admit


def test_preevictor_skips_sticky_and_cpu_preferred_blocks():
    um, gpu, pe, admit = _preevict_stack()
    blocks = [admit(i, now=float(i)) for i in range(4)]
    blocks[0].advice |= int(MemAdvise.READ_MOSTLY)
    blocks[1].advice |= int(MemAdvise.PREFERRED_LOCATION_CPU)
    assert pe.tick(1.0)
    # Skips both advised blocks (one sticky, one host-preferred): the
    # batch comes from the unadvised tail instead.
    assert gpu.is_resident(blocks[0]) and gpu.is_resident(blocks[1])
    assert not gpu.is_resident(blocks[2])
    assert not gpu.is_resident(blocks[3])
    assert pe.stats.hint_skips >= 1


def test_preevictor_still_drops_invalidated_advised_blocks():
    um, gpu, pe, admit = _preevict_stack()
    blocks = [admit(i, now=float(i)) for i in range(4)]
    blocks[0].advice |= int(MemAdvise.READ_MOSTLY)
    gpu.set_invalidated(blocks[0])
    assert pe.tick(1.0)
    assert not gpu.is_resident(blocks[0])  # dead data outranks any hint


def test_manager_advise_reaches_policy_and_recorder():
    from repro.harness.experiment import build_policy
    from repro.obs import SpanRecorder, attach

    facade = build_policy("deepum", SystemConfig())
    recorder = SpanRecorder()
    attach(facade, recorder)
    tensor = facade.device.empty((256, 1024))
    prefetcher = facade.manager.runtime.driver.policy.prefetcher
    before = prefetcher.commands_emitted
    blocks = facade.advise(tensor, int(ADVISE_STICKY))
    assert blocks
    assert all(b.advice & ADVISE_STICKY for b in blocks)
    assert prefetcher.commands_emitted == before + len(blocks)
    labels = recorder.decisions.advised_blocks
    assert labels.get(advice_labels(int(ADVISE_STICKY))) == len(blocks)
    assert recorder.decisions.commands_by_source.get("hint") == len(blocks)


def test_cpu_advice_does_not_seed_the_prefetcher():
    from repro.harness.experiment import build_policy

    facade = build_policy("deepum", SystemConfig())
    tensor = facade.device.empty((256, 1024))
    prefetcher = facade.manager.runtime.driver.policy.prefetcher
    before = prefetcher.commands_emitted
    facade.advise(tensor, int(MemAdvise.PREFERRED_LOCATION_CPU))
    assert prefetcher.commands_emitted == before


# ------------------------------------------------------- the serve loop

def test_serve_dlrm_is_deterministic():
    first = execute(serve_request())
    second = execute(serve_request())
    assert first.ok and second.ok
    assert first.snapshot == second.snapshot
    lat = first.snapshot["latency_ms"]
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
    assert first.snapshot["requests"] == TINY_SERVE["requests"]
    assert first.snapshot["hinted_blocks"] > 0


def test_serve_without_hints_advises_nothing():
    spec = ServeSpec(scenario="dlrm", requests=2, hints=False)
    result = execute(serve_request(spec=spec))
    assert result.ok
    assert result.snapshot["hints"] is False
    assert result.snapshot["hinted_blocks"] == 0


def test_gpt2_decode_kv_cache_overflows_the_gpu():
    spec = ServeSpec(scenario="gpt2-decode", requests=4, decode_tokens=4)
    result = execute(serve_request(spec=spec, model="gpt2-l"))
    assert result.ok
    snap = result.snapshot
    assert snap["peak_populated_bytes"] > snap["gpu_memory_bytes"]
    assert snap["kv_bytes"] > 0 and snap["kv_chunks"] > 0
    # warmup (1) + measured (4) requests, each decoding 4 tokens
    assert snap["tokens_decoded"] == 5 * 4
    assert snap["page_faults"] > 0


def test_auto_rate_requires_a_warmup_window():
    with pytest.raises(ValueError, match="warmup_iterations"):
        execute(serve_request(warmup_iterations=0))


def test_serving_rejects_non_um_policies():
    with pytest.raises(TypeError, match="UM-family"):
        execute(serve_request(policy="vdnn"))


def test_serve_task_round_trips_through_the_executor():
    from repro.exec import KIND_SERVE as TASK_KIND_SERVE
    from repro.exec import execute_task, serve_task

    task = serve_task(serve_request())
    assert task.kind == TASK_KIND_SERVE
    assert task.key == "serve-dlrm@160000/deepum"
    assert task.payload["kind"] == "serve"
    doc = execute_task(task.kind, task.payload)
    assert doc["status"] == "ok"
    assert doc["snapshot"]["latency_ms"]["p99"] > 0
    # The worker-side result must equal the in-process one bit-for-bit.
    assert doc["snapshot"] == execute(serve_request()).snapshot


def test_serve_task_rejects_experiment_requests():
    from repro.exec import serve_task

    with pytest.raises(ValueError, match="serve"):
        serve_task(RunRequest(model="mobilenet"))


def test_serve_payload_canonicalizes_stably():
    a = serve_request().canonical_payload()
    b = serve_request().canonical_payload()
    assert a == b
    assert a["system"] is not None  # calibration pinned the machine
