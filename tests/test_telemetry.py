"""Live telemetry: phase accounting, heartbeats, and stall diagnosis.

The contracts under test: telemetry is wall-clock bookkeeping only; a
heartbeat file's mtime is a *progress* clock (beats are written only when
the telemetry version moved); and a hung worker therefore reads
``stalled`` in every display surface long before its wall-clock timeout
fires — while the journal status honestly stays ``running``.
"""

import json
import threading
import time

import pytest

from repro.api import RunRequest
from repro.exec import (
    INJECT_ENV,
    STALL_FACTOR,
    STATUS_STALLED,
    Executor,
    ExecutorConfig,
    HeartbeatWriter,
    RunJournal,
    Telemetry,
    classify_running,
    experiment_task,
    read_heartbeat,
    watch_snapshot,
    write_heartbeat,
)
from repro.harness.experiment import calibrate_system

SYSTEM = calibrate_system("mobilenet")


def tiny_request(policy="um", seed=0):
    return RunRequest(model="mobilenet", policy=policy, batch=64, scale=0.5,
                      warmup_iterations=1, measure_iterations=1, seed=seed,
                      system=SYSTEM)


def tiny_tasks(policies=("um", "deepum")):
    return [experiment_task(tiny_request(p)) for p in policies]


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# ------------------------------------------------------------- telemetry

def test_phase_accounting_sums_to_elapsed():
    clock = FakeClock()
    tel = Telemetry(clock=clock)
    tel.reset(key="cell", attempt=1)
    tel.set_phase("warmup")
    clock.advance(2.0)
    tel.set_phase("timed", completed=0, total=4)
    clock.advance(3.0)
    assert tel.wall_breakdown() == {"warmup": 2.0, "timed": 3.0}
    assert sum(tel.wall_breakdown().values()) == tel.elapsed == 5.0


def test_reentering_a_phase_accumulates():
    clock = FakeClock()
    tel = Telemetry(clock=clock)
    tel.set_phase("timed")
    clock.advance(1.0)
    tel.set_phase("health")
    clock.advance(1.0)
    tel.set_phase("timed")
    clock.advance(1.0)
    assert tel.wall_breakdown() == {"timed": 2.0, "health": 1.0}


def test_version_moves_only_on_progress():
    clock = FakeClock()
    tel = Telemetry(clock=clock)
    v0 = tel.version
    tel.set_phase("warmup")
    assert tel.version == v0 + 1
    tel.set_sim_time(1.5)
    assert tel.version == v0 + 2
    tel.set_sim_time(1.0)  # the watermark never runs backwards
    assert tel.version == v0 + 2 and tel.sim_time == 1.5
    clock.advance(60.0)  # wall time alone is not progress
    assert tel.version == v0 + 2


def test_progress_fraction_is_clamped():
    tel = Telemetry(clock=FakeClock())
    assert tel.progress is None
    tel.set_phase("timed", completed=3, total=4)
    assert tel.progress == 0.75
    tel.set_phase("timed", completed=9, total=4)
    assert tel.progress == 1.0
    tel.set_phase("timed", completed=0, total=0)  # no total: unknown
    assert tel.progress is None


def test_snapshot_is_json_plain():
    tel = Telemetry(clock=FakeClock())
    tel.reset(key="mobilenet@64/um", attempt=2)
    tel.set_phase("warmup", completed=0, total=1)
    snap = json.loads(json.dumps(tel.snapshot()))
    assert snap["key"] == "mobilenet@64/um"
    assert snap["attempt"] == 2
    assert snap["phase"] == "warmup"
    assert snap["version"] == tel.version


# ------------------------------------------------------ heartbeat writer

def _wait_until(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.005)
    return None


def test_heartbeat_mtime_is_a_progress_clock(tmp_path):
    path = str(tmp_path / "beat.json")
    tel = Telemetry()
    tel.reset(key="cell")
    writer = HeartbeatWriter(path, 0.02, telemetry=tel)
    writer.start()
    try:
        first = _wait_until(lambda: read_heartbeat(path))
        assert first is not None and first["key"] == "cell"
        time.sleep(0.1)  # several intervals with no progress
        assert read_heartbeat(path)["mtime"] == first["mtime"]
        tel.set_phase("timed", completed=1, total=2)
        moved = _wait_until(
            lambda: (read_heartbeat(path) or {}).get("phase") == "timed"
            and read_heartbeat(path))
        assert moved is not None
        assert moved["mtime"] > first["mtime"]
        assert moved["progress"] == 0.5
    finally:
        writer.stop()


def test_heartbeat_writer_flushes_final_beat_on_stop(tmp_path):
    path = str(tmp_path / "beat.json")
    tel = Telemetry()
    tel.reset(key="cell")
    writer = HeartbeatWriter(path, 60.0, telemetry=tel)  # never ticks
    writer.start()
    assert _wait_until(lambda: read_heartbeat(path)) is not None
    tel.set_phase("timed")  # progress between the initial and final beat
    writer.stop()
    assert not writer.is_alive()
    assert read_heartbeat(path)["phase"] == "timed"


def test_heartbeat_writer_rejects_bad_interval(tmp_path):
    with pytest.raises(ValueError):
        HeartbeatWriter(str(tmp_path / "b.json"), 0.0)


def test_read_heartbeat_tolerates_garbage(tmp_path):
    path = tmp_path / "beat.json"
    assert read_heartbeat(str(path)) is None  # absent
    path.write_text("{not json")
    assert read_heartbeat(str(path)) is None  # torn write
    path.write_text("[1, 2]\n")
    assert read_heartbeat(str(path)) is None  # not an object


def test_classify_running_staleness():
    assert classify_running(None, 1.0) == "running"  # first beat not landed
    beat = {"phase": "timed", "mtime": 100.0}
    assert classify_running(beat, 1.0, now=100.0 + STALL_FACTOR) == "running"
    assert classify_running(
        beat, 1.0, now=100.0 + STALL_FACTOR + 0.1) == STATUS_STALLED
    # The threshold scales with the run's configured cadence.
    assert classify_running(beat, 10.0, now=105.0) == "running"


def test_write_heartbeat_is_atomic_and_creates_dirs(tmp_path):
    path = str(tmp_path / "heartbeats" / "cell.json")
    write_heartbeat(path, {"key": "cell", "version": 1})
    doc = read_heartbeat(path)
    assert doc["key"] == "cell" and "mtime" in doc
    leftovers = [p for p in (tmp_path / "heartbeats").iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []


# ------------------------------------------- journaled runs, end to end

def test_journaled_run_emits_heartbeats_and_breakdowns(tmp_path):
    config = ExecutorConfig(workers=2, retries=0, heartbeat_interval=0.05,
                            poll_interval=0.005)
    journal = RunJournal.create(tiny_tasks(), kind="run",
                                runs_dir=str(tmp_path),
                                executor=config.to_dict())
    assert journal.heartbeat_interval() == 0.05
    Executor(config).run_journal(journal)

    reloaded = RunJournal.load(journal.run_id, str(tmp_path))
    snap = watch_snapshot(reloaded)
    assert snap["finished"] is True
    assert snap["done"] == snap["total"] == 2
    assert snap["counts"] == {"ok": 2}
    for row in snap["cells"]:
        assert row["status"] == "ok"
        # Finished cells report the recorded wall time, not a live beat.
        assert row["elapsed_seconds"] is not None
    for key in reloaded.keys():
        beat = reloaded.heartbeat(key)
        assert beat is not None and beat["key"] == key
        breakdown = reloaded.result(key)["wall_breakdown"]
        assert breakdown and all(v >= 0 for v in breakdown.values())


def test_hung_worker_reads_stalled_before_timeout(tmp_path, monkeypatch):
    tasks = tiny_tasks(("um", "deepum"))
    hung = tasks[0].key
    monkeypatch.setenv(INJECT_ENV, json.dumps(
        {hung: {"mode": "hang", "seconds": 60.0}}))
    config = ExecutorConfig(workers=2, retries=0, heartbeat_interval=0.1,
                            cell_timeout=5.0, poll_interval=0.01)
    journal = RunJournal.create(tasks, kind="run", runs_dir=str(tmp_path),
                                executor=config.to_dict())

    done = threading.Event()

    def drive():
        try:
            Executor(config).run_journal(journal)
        finally:
            done.set()

    threading.Thread(target=drive, daemon=True).start()

    def stalled_snapshot():
        live = RunJournal.load(journal.run_id, str(tmp_path))
        if live.display_status(hung) == STATUS_STALLED:
            return watch_snapshot(live)
        return None

    # The diagnosis must land well inside the 5s cell timeout: the beat
    # freezes once the hang starts, so 3 x 0.1s intervals suffice.
    observed = _wait_until(stalled_snapshot, timeout=4.0)
    assert observed is not None, "hung cell was never diagnosed as stalled"
    row = {r["key"]: r for r in observed["cells"]}[hung]
    assert row["status"] == STATUS_STALLED
    assert observed["counts"][STATUS_STALLED] == 1
    # Display-only: the journal itself still says running (the process is
    # alive), and display_counts splits the two.
    live = RunJournal.load(journal.run_id, str(tmp_path))
    assert live.status(hung) == "running"
    assert live.display_counts()[STATUS_STALLED] >= 1

    assert done.wait(30.0), "executor never finished the run"
    final = RunJournal.load(journal.run_id, str(tmp_path))
    assert final.status(hung) == "timeout"
    assert final.status(tasks[1].key) == "ok"
