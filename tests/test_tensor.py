"""Tensors, storages, refcounting, views."""

import pytest

from repro.torchsim.dtypes import float16, float32, int64
from repro.torchsim.tensor import required_bytes


def test_empty_allocates_through_allocator(sim_device):
    t = sim_device.empty((4, 8))
    assert t.nbytes == 4 * 8 * 4
    assert t.alive
    assert sim_device.allocator.stats.allocated_bytes >= t.nbytes


def test_numel_and_nbytes(sim_device):
    t = sim_device.empty((3, 5), float16)
    assert t.numel == 15
    assert t.nbytes == 30


def test_scalar_shape(sim_device):
    t = sim_device.empty((), float32)
    assert t.numel == 1


def test_required_bytes():
    assert required_bytes((2, 2), float32) == 16
    assert required_bytes((0,), float32) == 1  # degenerate floor


def test_release_frees_block(sim_device):
    t = sim_device.empty((1024,))
    before = sim_device.allocator.stats.allocated_bytes
    t.release()
    assert not t.alive
    assert sim_device.allocator.stats.allocated_bytes < before


def test_double_release_raises(sim_device):
    t = sim_device.empty((16,))
    t.release()
    with pytest.raises(RuntimeError):
        t.release()


def test_view_shares_storage(sim_device):
    t = sim_device.empty((4, 8))
    v = t.view(32)
    assert v.storage is t.storage
    assert v.addr == t.addr
    t.release()
    assert v.alive  # view's reference keeps the storage alive
    v.release()
    assert not v.alive


def test_view_shape_mismatch_raises(sim_device):
    t = sim_device.empty((4, 8))
    with pytest.raises(ValueError):
        t.view(33)


def test_uids_are_unique_and_stable(sim_device):
    a = sim_device.empty((4,))
    b = sim_device.empty((4,))
    assert a.uid != b.uid
    uid = a.uid
    assert a.uid == uid


def test_persistent_flag(sim_device):
    p = sim_device.empty((4,), persistent=True, name="w")
    assert p.persistent
    assert "w" in repr(p)


def test_int64_itemsize(sim_device):
    t = sim_device.empty((10,), int64)
    assert t.nbytes == 80
