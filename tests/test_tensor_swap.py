"""TensorSwapManager internals: residency, planning, host staging."""

import pytest

from repro.baselines.tensor_swap import (
    SwapPlanner,
    TensorSwapManager,
    TensorSwapOOM,
)
from repro.config import GPUSpec, HostSpec, SystemConfig
from repro.constants import GiB, MiB
from repro.torchsim.backend import RawGPUBackend
from repro.torchsim.context import Device
from repro.torchsim.kernels import KernelLaunch


def make(gpu_mb=32, host_mb=512, planner=None, **kw):
    system = SystemConfig(gpu=GPUSpec(memory_bytes=gpu_mb * MiB),
                          host=HostSpec(memory_bytes=host_mb * MiB))
    manager = TensorSwapManager(system, planner or SwapPlanner(), **kw)
    device = Device.with_backend(RawGPUBackend(capacity=gpu_mb * MiB), manager)
    return manager, device


def launch(device, tensors, name="k", flops=1e6, writes=None):
    return KernelLaunch(name=name, arg_signature=(name,), reads=list(tensors),
                        writes=list(writes or tensors[-1:]), flops=flops)


def test_kernel_advances_clock(capsys=None):
    manager, device = make()
    t = device.empty((1024,))
    device.submit(launch(device, [t]))
    assert manager.elapsed() > 0
    assert manager.compute_time > 0


def test_oversubscription_forces_swaps():
    manager, device = make(gpu_mb=8)
    tensors = [device.empty((1 * MiB // 4,), persistent=True) for _ in range(12)]
    for t in tensors:
        device.submit(launch(device, [t]))
    for t in tensors:  # second pass: swapped-out tensors come back
        device.submit(launch(device, [t]))
    assert manager.stats.swap_outs > 0
    assert manager.stats.swap_ins > 0
    assert manager.stats.bytes_in > 0


def test_alloc_time_eviction_registers_fresh_tensors():
    """Model build larger than the device must succeed by eviction."""
    manager, device = make(gpu_mb=8)
    tensors = [device.empty((1 * MiB,), persistent=True) for _ in range(20)]
    assert len(tensors) == 20
    assert manager.stats.oom_evictions > 0


def test_working_set_beyond_capacity_raises():
    manager, device = make(gpu_mb=8)
    big = [device.empty((1 * MiB,), persistent=True) for _ in range(6)]
    with pytest.raises(TensorSwapOOM):
        device.submit(launch(device, big))


def test_pinned_host_staging_is_capped():
    manager, device = make(gpu_mb=8, host_mb=16)
    assert manager.host_capacity == int(16 * MiB * manager.PINNED_HOST_FRACTION)
    with pytest.raises(TensorSwapOOM):
        tensors = [device.empty((1 * MiB,), persistent=True) for _ in range(40)]
        for _ in range(3):
            for t in tensors:
                device.submit(launch(device, [t]))


def test_freed_tensors_release_staging():
    manager, device = make(gpu_mb=8)
    for _ in range(3):
        batch = [device.empty((1 * MiB,)) for _ in range(10)]
        for t in batch:
            device.submit(launch(device, [t]))
        for t in batch:
            t.release()
    manager._reclaim_freed_staging()
    assert manager.host_bytes <= 10 * MiB


def test_lookahead_prefetch_hides_transfers():
    """With room on the device, look-ahead converts synchronous swap-in
    stalls into transfers hidden under the previous kernels' compute."""

    class Eager(SwapPlanner):
        lookahead = 2

    class NoPrefetch(SwapPlanner):
        lookahead = 0

    def run(planner):
        manager, device = make(gpu_mb=64, planner=planner)
        tensors = [device.empty((1 * MiB,), persistent=True) for _ in range(12)]
        # Teach the sequence, then push everything out to host.
        for _ in range(2):
            for t in tensors:
                device.submit(launch(device, [t], name=f"k{t.uid}", flops=3e9))
        for t in tensors:
            manager._swap_out(manager._managed(t.storage), device)
        start_wait = manager.stats.sync_wait_time
        for t in tensors:
            device.submit(launch(device, [t], name=f"k{t.uid}", flops=3e9))
        return manager.stats.sync_wait_time - start_wait

    assert run(Eager()) < run(NoPrefetch())


def test_belady_victims_beat_lru_on_loops():
    class Belady(SwapPlanner):
        belady_victims = True
        lookahead = 0

    class LRU(SwapPlanner):
        belady_victims = False
        lookahead = 0

    def run(planner):
        manager, device = make(gpu_mb=8, planner=planner)
        tensors = [device.empty((1 * MiB,), persistent=True) for _ in range(10)]
        for _ in range(6):  # cyclic sweep: LRU's worst case
            for t in tensors:
                device.submit(launch(device, [t], name=f"k{t.uid}"))
        return manager.stats.swap_ins

    assert run(Belady()) <= run(LRU())


def test_transfer_fraction_scales_bytes():
    class Half(SwapPlanner):
        transfer_fraction = 0.5

    manager, device = make(gpu_mb=8, planner=Half())
    tensors = [device.empty((1 * MiB,), persistent=True) for _ in range(12)]
    for _ in range(2):
        for t in tensors:
            device.submit(launch(device, [t]))
    per_swap = manager.stats.bytes_out / manager.stats.swap_outs
    assert per_swap == tensors[0].nbytes * 0.5


def test_segment_growth_charges_cuda_malloc():
    manager, device = make(gpu_mb=64)
    before = manager.now
    device.empty((4 * MiB,))
    device.submit(launch(device, [device.empty((1024,))]))
    assert manager.now - before >= manager.cuda_malloc_cost


def test_sequence_memory_learns_next_operands():
    manager, device = make(gpu_mb=64)
    a = device.empty((1024,), persistent=True)
    b = device.empty((1024,), persistent=True)
    for _ in range(3):
        device.submit(launch(device, [a], name="first"))
        device.submit(launch(device, [b], name="second"))
    plan = manager._next_operands.get(("first", ("first",)))
    assert plan and b.storage.uid in plan[0]
