"""Whole-run accounting invariants over the simulated timelines.

These are property-style checks on a real training run: the engine's
aggregate counters, the per-kernel records and the span stream must all
describe the same timeline — time is neither invented nor lost, resources
are never double-booked, and no event precedes its cause.
"""

import pytest

from repro.config import DeepUMConfig, GPUSpec, HostSpec, SystemConfig
from repro.constants import GiB, MiB
from repro.core.deepum import DeepUM
from repro.baselines import NaiveUM
from repro.obs import TRACK_FAULT, TRACK_LINK, SpanRecorder, attach
from workloads import make_mlp_workload

EPS = 1e-9


def small_system():
    return SystemConfig(gpu=GPUSpec(memory_bytes=64 * MiB),
                        host=HostSpec(memory_bytes=4 * GiB))


@pytest.fixture(scope="module", params=["deepum", "um"])
def trained(request):
    """An instrumented run of each UM-family policy, shared per module."""
    system = small_system()
    if request.param == "deepum":
        facade = DeepUM(system, DeepUMConfig(prefetch_degree=8))
    else:
        facade = NaiveUM(system)
    rec = attach(facade, SpanRecorder())
    step, _, _ = make_mlp_workload(facade.device, layers_n=6, dim=512,
                                   batch=128)
    for _ in range(3):
        step()
    return facade, rec


def test_gpu_time_decomposes_exactly(trained):
    """now = launches + compute + fault stall + in-flight stall, exactly.

    (Checked before ``finish()``, which fast-forwards past trailing
    background transfers.)
    """
    facade, _ = trained
    eng = facade.engine
    m = eng.metrics
    expected = (m.kernels * eng.system.gpu.kernel_launch_overhead
                + m.compute_time + m.fault_wait_time + m.inflight_wait_time)
    assert eng.now == pytest.approx(expected, rel=1e-12)


def test_link_cannot_be_busy_longer_than_elapsed(trained):
    facade, _ = trained
    eng = facade.engine
    eng.finish()
    assert eng.link.busy_time <= eng.now + EPS


def test_recorder_and_engine_agree_on_stalls(trained):
    facade, rec = trained
    eng = facade.engine
    assert rec.total_fault_wait() == pytest.approx(eng.metrics.fault_wait_time)
    assert rec.total_inflight_wait() == \
        pytest.approx(eng.metrics.inflight_wait_time)


def test_no_span_has_negative_duration(trained):
    _, rec = trained
    for span in rec.spans:
        assert span.end >= span.start - EPS, span
    for k in rec.kernels:
        assert k.end >= k.start, k


def test_pcie_spans_never_overlap(trained):
    """The link is a single-owner resource: transfers serialize."""
    _, rec = trained
    xfers = sorted((s for s in rec.spans if s.track == TRACK_LINK),
                   key=lambda s: (s.start, s.end))
    for prev, nxt in zip(xfers, xfers[1:]):
        assert nxt.start >= prev.end - EPS, (prev, nxt)


def test_no_event_starts_before_its_cause(trained):
    """Kernel-owned events happen within (or right at) their kernel.

    A fault phase cannot begin before the kernel that faulted was running,
    and background work attributed to a kernel cannot start before that
    kernel was even launched (launch overhead marks the earliest cause).
    """
    _, rec = trained
    overhead = trained[0].engine.system.gpu.kernel_launch_overhead
    for span in rec.spans:
        if span.kernel_seq < 0:
            continue
        k = rec.kernels[span.kernel_seq]
        assert span.start >= k.start - overhead - EPS, (span, k)
        if span.track == TRACK_FAULT:
            assert span.start >= k.start - EPS, (span, k)
            assert span.end <= k.end + EPS, (span, k)
    for inst in rec.instants:
        if inst.kernel_seq < 0 or inst.track != TRACK_FAULT:
            continue
        k = rec.kernels[inst.kernel_seq]
        assert k.start - EPS <= inst.t <= k.end + EPS, (inst, k)


def test_every_kernel_record_is_closed(trained):
    _, rec = trained
    assert rec.cur is None
    assert all(k.end > 0.0 for k in rec.kernels)
