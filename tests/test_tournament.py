"""Policy tournaments: grid construction, judged cells, ranking, CLI."""

import json

import pytest

from repro.cli import main
from repro.exec import KIND_TOURNAMENT_CELL, execute_task, tournament_cell_task
from repro.harness.tournament import (
    DEFAULT_ENTRANTS,
    TOURNAMENTS,
    cell_key,
    format_tournament,
    rank_tournament,
    run_tournament_cell,
    tournament_payloads,
)


def tiny_payload(policy, **overrides):
    payload = {
        "model": "mobilenet", "batch": 3072, "policy": policy,
        "pressure": 2.2, "warmup_iterations": 1, "measure_iterations": 1,
        "seed": 0, "prefetch_degree": 32,
    }
    payload.update(overrides)
    return payload


def cell_doc(policy, key, *, status="ok", elapsed=1.0, used=8, issued=10,
             hits=6, faults=2, findings=0):
    """A synthetic worker result doc, shaped like run_tournament_cell's."""
    return {
        "status": status, "error": "" if status == "ok" else "boom",
        "model": "m", "batch": 64, "policy": policy, "pressure": 2.0,
        "snapshot": {"elapsed": elapsed} if status == "ok" else None,
        "policy_health": {
            "prefetch_used": used, "commands_issued": issued,
            "prefetch_hits": hits, "faults": faults,
            "lateness": {"count": 2, "total": 0.5},
        } if status == "ok" else None,
        "memory": None,
        "findings": [{"id": f"f{i}"} for i in range(findings)],
    }


# ----------------------------------------------------------------- grids

def test_scenarios_are_pinned_and_named():
    assert {"flagship", "pressure-ladder", "smoke"} <= set(TOURNAMENTS)
    for name, scenario in TOURNAMENTS.items():
        assert scenario.name == name
        assert scenario.models and scenario.pressures and scenario.policies
        assert scenario.config_dict()["name"] == name
    # The flagship grid fields ≥3 prefetching entrants plus the UM floor.
    assert set(DEFAULT_ENTRANTS) == {"deepum", "stride", "markov", "um"}


def test_payload_grid_covers_models_x_pressures_x_policies():
    scenario = TOURNAMENTS["flagship"]
    payloads = tournament_payloads(scenario)
    assert len(payloads) == (len(scenario.models) * len(scenario.pressures)
                             * len(scenario.policies))
    for key, payload in payloads.items():
        assert key == cell_key(payload["model"], payload["batch"],
                               payload["pressure"], payload["policy"])
        assert payload["warmup_iterations"] == scenario.warmup_iterations
        assert payload["seed"] == scenario.seed


def test_payload_policies_override():
    payloads = tournament_payloads(TOURNAMENTS["smoke"],
                                   policies=["markov", "um"])
    assert {p["policy"] for p in payloads.values()} == {"markov", "um"}


def test_tournament_cell_task_kind():
    task = tournament_cell_task(tiny_payload("deepum"), "k")
    assert task.kind == KIND_TOURNAMENT_CELL
    assert task.payload["policy"] == "deepum"


# ----------------------------------------------------------- judged cells

@pytest.mark.parametrize("policy", ["stride", "um"])
def test_run_tournament_cell_judges_in_worker(policy):
    doc = run_tournament_cell(tiny_payload(policy))
    assert doc["status"] == "ok", doc["error"]
    assert doc["snapshot"]["elapsed"] > 0
    health = doc["policy_health"]
    assert health is not None
    assert {"accuracy", "coverage", "lateness"} <= set(health)
    assert doc["memory"] is not None
    assert isinstance(doc["findings"], list)
    # A prefetching entrant must actually prefetch under pressure 2.2.
    if policy != "um":
        assert health["commands_issued"] > 0


def test_run_tournament_cell_is_deterministic():
    a = run_tournament_cell(tiny_payload("deepum"))
    b = execute_task(KIND_TOURNAMENT_CELL, tiny_payload("deepum"))
    assert a["snapshot"] == b["snapshot"]
    assert a["policy_health"] == b["policy_health"]


# ---------------------------------------------------------------- ranking

def test_rank_orders_by_geomean_elapsed():
    results = {
        "a/fast": cell_doc("fast", "a/fast", elapsed=1.0),
        "a/slow": cell_doc("slow", "a/slow", elapsed=4.0),
    }
    doc = rank_tournament(results)
    assert [r["policy"] for r in doc["ranking"]] == ["fast", "slow"]
    assert [r["rank"] for r in doc["ranking"]] == [1, 2]
    assert len(doc["cells"]) == 2


def test_incomplete_grid_ranks_last_whatever_its_times():
    results = {
        "c1/quick": cell_doc("quick", "c1/quick", elapsed=0.1),
        "c2/quick": cell_doc("quick", "c2/quick", status="failed"),
        "c1/steady": cell_doc("steady", "c1/steady", elapsed=9.0),
        "c2/steady": cell_doc("steady", "c2/steady", elapsed=9.0),
    }
    ranking = rank_tournament(results)["ranking"]
    assert [r["policy"] for r in ranking] == ["steady", "quick"]
    assert ranking[0]["complete"] and not ranking[1]["complete"]
    assert ranking[1]["cells_ok"] == 1 and ranking[1]["cells"] == 2


def test_health_aggregated_from_summed_counters():
    results = {
        "c1/p": cell_doc("p", "c1/p", used=9, issued=10, hits=0, faults=10),
        "c2/p": cell_doc("p", "c2/p", used=0, issued=90, hits=90, faults=0),
    }
    row = rank_tournament(results)["ranking"][0]
    # Summed counters: 9/100 — not the 0.45 a mean-of-ratios would give.
    assert row["accuracy"] == pytest.approx(0.09)
    assert row["coverage"] == pytest.approx(0.90)
    assert row["lateness_mean"] == pytest.approx(0.25)


def test_format_tournament_renders_both_tables():
    results = {"c1/p": cell_doc("p", "c1/p", findings=3)}
    text = format_tournament(rank_tournament(results), title="t")
    assert "t: ranking" in text and "t: cells" in text
    for column in ("accuracy", "coverage", "lateness", "findings"):
        assert column in text


# -------------------------------------------------------------------- CLI

def test_cli_lists_scenarios(capsys):
    assert main(["tournament", "list"]) == 0
    out = capsys.readouterr().out
    for name in TOURNAMENTS:
        assert name in out


def test_cli_unknown_scenario_exits():
    with pytest.raises(SystemExit, match="unknown tournament scenario"):
        main(["tournament", "grand-prix"])


def test_cli_unknown_policy_override_exits():
    with pytest.raises(SystemExit, match="unknown policies"):
        main(["tournament", "smoke", "--policies", "magic"])


def test_cli_smoke_tournament_runs_and_resumes(tmp_path, capsys):
    out_json = tmp_path / "tournament.json"
    argv = ["tournament", "smoke", "--workers", "2",
            "--runs-dir", str(tmp_path), "--out", str(out_json)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "tournament smoke: ranking" in out
    assert "deepum" in out and "stride" in out
    doc = json.loads(out_json.read_text())
    assert len(doc["ranking"]) == 2
    assert all(cell["status"] == "ok" for cell in doc["cells"])

    run_id = json.loads(
        (sorted(tmp_path.glob("*/state.json"))[0]).read_text())["run_id"]
    # Resume of a finished tournament rebuilds the ranking from the journal.
    assert main(["runs", "resume", run_id, "--runs-dir", str(tmp_path)]) == 0
    resumed = capsys.readouterr().out
    assert "all cells already finished" in resumed
    assert "tournament smoke: ranking" in resumed
