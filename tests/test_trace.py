"""Trace capture and analysis."""

import io

from repro.config import DeepUMConfig
from repro.core.deepum import DeepUM
from repro.trace import Tracer, TraceEvent, iteration_fault_counts

from workloads import make_mlp_workload


def traced_run(tiny_system, iterations=3):
    deepum = DeepUM(tiny_system, DeepUMConfig(prefetch_degree=8))
    tracer = Tracer.attach(deepum)
    step, _, _ = make_mlp_workload(deepum.device, layers_n=6, dim=512, batch=128)
    for _ in range(iterations):
        step()
    return deepum, tracer


def test_tracer_records_launches_and_faults(tiny_system):
    deepum, tracer = traced_run(tiny_system)
    kinds = {e.kind for e in tracer.events}
    assert "launch" in kinds
    assert "fault" in kinds
    launches = tracer.launches()
    assert len(launches) == deepum.engine.metrics.kernels
    assert all(e.exec_id >= 0 for e in launches)


def test_tracer_does_not_change_results(tiny_system):
    plain = DeepUM(tiny_system, DeepUMConfig(prefetch_degree=8))
    step, _, _ = make_mlp_workload(plain.device, layers_n=6, dim=512, batch=128)
    for _ in range(3):
        step()
    deepum, _ = traced_run(tiny_system)
    assert deepum.elapsed() == plain.elapsed()
    assert deepum.page_faults == plain.page_faults


def test_detach_restores_hooks(tiny_system):
    deepum, tracer = traced_run(tiny_system, iterations=1)
    before = len(tracer.events)
    tracer.detach()
    step, _, _ = make_mlp_workload(deepum.device, layers_n=2, dim=64, batch=8)
    step()
    assert len(tracer.events) == before


def test_summary_shape(tiny_system):
    deepum, tracer = traced_run(tiny_system, iterations=4)
    summary = tracer.summary()
    assert summary.kernels > 100
    assert 0 < summary.distinct_exec_ids < summary.kernels
    assert summary.faults > 0
    assert summary.faults_per_kernel > 0
    assert summary.hottest_kernels


def test_stream_periodicity_detects_training_loop(tiny_system):
    _, tracer = traced_run(tiny_system, iterations=4)
    assert tracer.summary().stream_periodicity is not None
    assert tracer.summary().stream_periodicity > 0.95


def test_median_refault_gap_synthetic():
    tracer = Tracer()
    events = [
        TraceEvent(0, "launch", 0.0, exec_id=1),
        TraceEvent(1, "fault", 0.0, block=5),
        TraceEvent(2, "launch", 0.1, exec_id=2),
        TraceEvent(3, "launch", 0.2, exec_id=3),
        TraceEvent(4, "fault", 0.2, block=5),   # refault of 5, gap 2 kernels
        TraceEvent(5, "fault", 0.2, block=9),   # first fault: no gap
    ]
    tracer.events = events
    assert tracer.summary().median_refault_gap == 2.0


def test_median_refault_gap_none_without_repeats():
    tracer = Tracer()
    tracer.events = [
        TraceEvent(0, "launch", 0.0, exec_id=1),
        TraceEvent(1, "fault", 0.0, block=5),
    ]
    assert tracer.summary().median_refault_gap is None


def test_roundtrip_serialization(tiny_system, tmp_path):
    _, tracer = traced_run(tiny_system, iterations=2)
    path = tmp_path / "trace.jsonl"
    tracer.save(str(path))
    loaded = Tracer.load(str(path))
    assert loaded.events == tracer.events
    assert loaded.summary() == tracer.summary()


def test_write_to_stream(tiny_system):
    _, tracer = traced_run(tiny_system, iterations=1)
    buf = io.StringIO()
    tracer.write(buf)
    lines = buf.getvalue().splitlines()
    assert len(lines) == len(tracer.events)
    assert TraceEvent.from_json(lines[0]) == tracer.events[0]


def test_iteration_fault_counts():
    events = [
        TraceEvent(0, "launch", 0.0, exec_id=1),
        TraceEvent(1, "fault", 0.0, block=5),
        TraceEvent(2, "launch", 0.1, exec_id=2),
        TraceEvent(3, "launch", 0.2, exec_id=1),
        TraceEvent(4, "fault", 0.2, block=6),
        TraceEvent(5, "fault", 0.2, block=7),
        TraceEvent(6, "launch", 0.3, exec_id=2),
    ]
    assert iteration_fault_counts(events, kernels_per_iteration=2) == [1, 2]


def test_iteration_fault_counts_validation():
    import pytest
    with pytest.raises(ValueError):
        iteration_fault_counts([], 0)
    assert iteration_fault_counts([], 2) == []
