"""Trace diff: alignment, attribution, and the bit-for-bit exactness contract.

The contract under test (see ``repro.obs.diff``): a per-entry delta is the
sum of its bucket deltas in ``BUCKETS`` order, and ``total_delta`` is the
sum of entry deltas in alignment order. These tests recompute both sums in
exactly that order and assert float equality (``==``, not approx) — on real
runs, on synthetic aligned/diverging sequences, and property-style under
hypothesis with dyadic bucket values cross-checked against exact
``fractions.Fraction`` arithmetic.
"""

import json
from fractions import Fraction
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.harness import calibrate_system, run_experiment
from repro.obs import SpanRecorder
from repro.obs.decisions import ALL_CAUSES
from repro.obs.diff import BUCKETS, diff_runs, format_diff, kernel_slices
from repro.obs.recorder import KernelRecord


def _recorded_run(policy):
    system = calibrate_system("mobilenet")
    rec = SpanRecorder()
    result = run_experiment("mobilenet", 3072, policy, system=system,
                            warmup_iterations=1, measure_iterations=1,
                            recorder=rec)
    assert not result.oom
    return rec


def _fake_recorder(kernels):
    return SimpleNamespace(kernels=list(kernels), instants=[])


def _kernel(seq, name, exec_id, start, compute, fault, inflight):
    end = start + compute + fault + inflight
    return KernelRecord(seq=seq, name=name, exec_id=exec_id, start=start,
                        end=end, compute_time=compute, fault_wait=fault,
                        inflight_wait=inflight)


def _assert_exact(diff):
    """Recompute every sum of the exactness contract and require ==."""
    total = 0.0
    buckets = {name: 0.0 for name in BUCKETS}
    for entry in diff.entries:
        delta = 0.0
        for name in BUCKETS:
            delta += entry.deltas[name]
            buckets[name] += entry.deltas[name]
        assert delta == entry.delta
        total += entry.delta
    assert total == diff.total_delta
    assert buckets == diff.bucket_deltas


# --------------------------------------------------------------- real runs


def test_identical_runs_diff_to_exact_zero():
    rec = _recorded_run("deepum")
    diff = diff_runs(rec, rec, label_a="x", label_b="y")
    assert diff.inserted == 0 and diff.deleted == 0
    assert diff.matched == len(rec.kernels) > 0
    assert diff.total_delta == 0.0
    assert diff.total_a == diff.total_b
    for entry in diff.entries:
        assert entry.op == "match" and entry.delta == 0.0
        assert all(v == 0.0 for v in entry.deltas.values())
    _assert_exact(diff)


def test_um_vs_deepum_diff_is_exact_and_name_aligned():
    rec_um = _recorded_run("um")
    rec_dm = _recorded_run("deepum")
    diff = diff_runs(rec_um, rec_dm, label_a="um", label_b="deepum")
    # Naive UM assigns no exec IDs, so alignment falls back to names —
    # and the same workload then matches kernel-for-kernel.
    assert diff.aligned_on == "name"
    assert diff.matched > 0
    assert diff.matched == len(rec_um.kernels) == len(rec_dm.kernels)
    _assert_exact(diff)
    # The attributed total equals the difference of per-side kernel time
    # up to the residual bucket's float dust, which the contract captures:
    # summing published buckets reproduces total_delta exactly.
    assert diff.total_b < diff.total_a  # deepum is faster on this workload
    text = format_diff(diff)
    assert "bit-for-bit" in text
    assert "deepum - um" in text


def test_slices_cover_kernel_durations_exactly():
    rec = _recorded_run("deepum")
    for s in kernel_slices(rec):
        total = 0.0
        for name in BUCKETS:
            total += s.buckets[name]
        assert total == s.duration
        # Cause buckets never exceed the recorded fault phase they refine.
        assert s.buckets["fault_other"] >= -1e-12


# --------------------------------------------------------------- synthetic


def test_diverging_sequences_insert_delete():
    a = _fake_recorder([
        _kernel(0, "conv", 1, 0.0, 1.0, 0.5, 0.0),
        _kernel(1, "relu", 2, 1.5, 0.25, 0.0, 0.0),
        _kernel(2, "fc", 3, 1.75, 0.5, 0.0, 0.125),
    ])
    b = _fake_recorder([
        _kernel(0, "conv", 1, 0.0, 1.0, 0.0, 0.0),
        _kernel(1, "bn", 9, 1.0, 0.125, 0.0, 0.0),  # only in B
        _kernel(2, "fc", 3, 1.125, 0.5, 0.0, 0.0),
    ])
    diff = diff_runs(a, b)
    assert diff.aligned_on == "exec"
    assert diff.matched == 2 and diff.inserted == 1 and diff.deleted == 1
    ops = [e.op for e in diff.entries]
    assert ops == ["match", "delete", "insert", "match"]
    by_key = {e.key: e for e in diff.entries}
    # The deleted kernel contributes its full (negated) time.
    assert by_key[("relu", 2)].delta == -0.25
    assert by_key[("bn", 9)].delta == 0.125
    # conv lost its 0.5 s fault phase, fc its 0.125 s in-flight wait.
    assert by_key[("conv", 1)].deltas["fault_other"] == -0.5
    assert by_key[("fc", 3)].deltas["inflight_wait"] == -0.125
    assert diff.total_delta == -0.75
    _assert_exact(diff)


def test_cause_taxonomy_refines_fault_phase():
    k = _kernel(0, "conv", 1, 0.0, 1.0, 0.75, 0.0)
    causes = SimpleNamespace(fault_causes=[
        SimpleNamespace(kernel_seq=0, cause=ALL_CAUSES[0], stall=0.5),
        SimpleNamespace(kernel_seq=0, cause=ALL_CAUSES[2], stall=0.25),
    ])
    rec = SimpleNamespace(kernels=[k], instants=[], decisions=causes)
    (s,) = kernel_slices(rec)
    assert s.buckets[ALL_CAUSES[0]] == 0.5
    assert s.buckets[ALL_CAUSES[2]] == 0.25
    assert s.buckets["fault_other"] == 0.0  # fully classified
    assert s.buckets["compute"] == 1.0


# ------------------------------------------------------------- property


def _dyadic():
    # n/1024 floats are exactly representable and sum without rounding in
    # the magnitudes used here, so float and Fraction arithmetic agree.
    return st.integers(min_value=0, max_value=1024).map(lambda n: n / 1024)


_names = st.sampled_from(["conv", "relu", "fc", "pool"])


@st.composite
def _kernel_list(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    kernels = []
    t = 0.0
    for seq in range(n):
        name = draw(_names)
        exec_id = draw(st.integers(min_value=-1, max_value=6))
        compute, fault, inflight = draw(_dyadic()), draw(_dyadic()), draw(_dyadic())
        kernels.append(_kernel(seq, name, exec_id, t, compute, fault, inflight))
        t = kernels[-1].end
    return kernels


@settings(max_examples=60, deadline=None)
@given(a=_kernel_list(), b=_kernel_list())
def test_attribution_sums_bit_for_bit(a, b):
    diff = diff_runs(_fake_recorder(a), _fake_recorder(b))
    _assert_exact(diff)
    # Cross-check against exact rational arithmetic: with dyadic inputs
    # every float sum above is exact, so the attributed total must equal
    # total_b - total_a not just bitwise-in-order but mathematically.
    exact = Fraction(0)
    for k in b:
        exact += Fraction(k.end) - Fraction(k.start)
    for k in a:
        exact -= Fraction(k.end) - Fraction(k.start)
    assert Fraction(diff.total_delta) == exact
    assert diff.matched + diff.deleted == len(a)
    assert diff.matched + diff.inserted == len(b)


@settings(max_examples=30, deadline=None)
@given(a=_kernel_list())
def test_self_diff_is_identity(a):
    diff = diff_runs(_fake_recorder(a), _fake_recorder(a))
    assert diff.matched == len(a)
    assert diff.inserted == diff.deleted == 0
    assert diff.total_delta == 0.0


# ------------------------------------------------------------------- CLI


def test_trace_diff_cli(tmp_path, capsys):
    out = tmp_path / "diff.json"
    main(["trace", "diff", "mobilenet", "--batch", "3072",
          "--warmup", "1", "--measure", "1", "--out", str(out)])
    text = capsys.readouterr().out
    assert "trace diff: deepum - um" in text
    assert "Attribution by bucket" in text
    doc = json.loads(out.read_text())
    assert doc["aligned_on"] == "name"
    assert doc["buckets"] == list(BUCKETS)
    total = 0.0
    for entry in doc["entries"]:
        delta = 0.0
        for name in doc["buckets"]:
            delta += entry["deltas"][name]
        assert delta == entry["delta"]
        total += entry["delta"]
    assert total == doc["total_delta"]


def test_trace_diff_cli_rejects_same_policy():
    with pytest.raises(SystemExit):
        main(["trace", "diff", "mobilenet", "--a", "um", "--b", "um"])
