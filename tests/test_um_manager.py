"""UMMemoryManager: block decomposition, population accounting, sparsity."""

import pytest

from repro.config import GPUSpec, HostSpec, SystemConfig
from repro.constants import GiB, MiB, PAGE_SIZE, UM_BLOCK_SIZE
from repro.core.um_manager import UMCapacityError, UMMemoryManager
from repro.sim.engine import UMSimulator
from repro.torchsim.backend import UMBackend
from repro.torchsim.context import Device
from repro.torchsim.kernels import KernelLaunch, SparseAccess


def make(host_mb=1024):
    system = SystemConfig(gpu=GPUSpec(memory_bytes=64 * MiB),
                          host=HostSpec(memory_bytes=host_mb * MiB))
    engine = UMSimulator(system)
    manager = UMMemoryManager(engine, host_capacity=host_mb * MiB)
    device = Device.with_backend(
        UMBackend(um=engine.um, host_capacity=host_mb * MiB), manager)
    return engine, manager, device


def launch(tensors, name="k", flops=1e6, sparse=None):
    return KernelLaunch(name=name, arg_signature=(name,),
                        reads=list(tensors), writes=list(tensors[-1:]),
                        flops=flops, sparse=sparse)


def test_decompose_covers_tensor_exactly():
    engine, manager, device = make()
    t = device.empty((UM_BLOCK_SIZE // 4 + 1024,))  # ~2 blocks + change
    parts = manager._decompose(t.addr, t.nbytes)
    assert sum(pages for _, pages in parts) \
        == -(-t.nbytes // PAGE_SIZE)
    indices = [idx for idx, _ in parts]
    assert indices == sorted(indices)


def test_population_counted_once_per_range():
    engine, manager, device = make()
    t = device.empty((1024, 1024))
    manager._decompose(t.addr, t.nbytes)
    populated = manager.populated_bytes
    manager._decompose(t.addr, t.nbytes)  # cache hit: no double counting
    assert manager.populated_bytes == populated


def test_peak_population_tracks_maximum():
    engine, manager, device = make()
    a = device.empty((1024, 1024))
    device.submit(launch([a]))
    peak = manager.peak_populated_bytes
    assert peak >= a.nbytes
    assert manager.peak_populated_bytes == peak


def test_host_capacity_error():
    engine, manager, device = make(host_mb=8)
    with pytest.raises(UMCapacityError):
        big = device.empty((16 * MiB,))
        device.submit(launch([big]))


def test_capacity_error_mutates_nothing():
    """Regression pin: an overshooting ``_decompose`` used to populate
    blocks, bump the counters, and emit ``mem.grow`` events before
    raising. A caught OOM must leave the accounting exactly as it was."""
    from repro.obs import SpanRecorder
    from repro.obs.recorder import TRACK_MEMORY

    engine, manager, device = make(host_mb=8)
    recorder = SpanRecorder()
    engine.recorder = recorder
    small = device.empty((1024,))
    device.submit(launch([small]))

    populated = manager.populated_bytes
    peak = manager.peak_populated_bytes
    cache = dict(manager._decomp_cache)
    pages_before = {idx: blk.populated_pages
                    for idx, blk in engine.um._blocks.items()
                    if blk.populated_pages}
    events_before = len(recorder.instants)

    big = device.empty((16 * MiB,))  # virtual alloc: cannot fail yet
    with pytest.raises(UMCapacityError) as err:
        manager._decompose(big.addr, big.nbytes)
    assert "exceeds host capacity" in str(err.value)

    assert manager.populated_bytes == populated
    assert manager.peak_populated_bytes == peak
    assert manager._decomp_cache == cache  # the failed range is not cached
    assert {idx: blk.populated_pages
            for idx, blk in engine.um._blocks.items()
            if blk.populated_pages} == pages_before
    grow_events = [ev for ev in recorder.instants[events_before:]
                   if ev.track == TRACK_MEMORY and ev.name == "mem.grow"]
    assert grow_events == []
    # The manager is still fully usable after the caught OOM.
    device.submit(launch([small], name="again"))
    assert manager.populated_bytes == populated


def test_accesses_deduplicate_blocks_across_operands():
    engine, manager, device = make()
    t = device.empty((1024,))
    k = launch([t, t, t])
    accesses = manager._build_accesses(k, device)
    indices = [a.block.index for a in accesses]
    assert len(indices) == len(set(indices))


def test_sparse_subset_respects_coverage():
    engine, manager, device = make()
    table = device.empty((16 * UM_BLOCK_SIZE // 4,), persistent=True)
    k = launch([table], sparse=SparseAccess(tensor_index=0, coverage=0.25))
    accesses = manager._build_accesses(k, device)
    full = len(manager._decompose(table.addr, table.nbytes))
    assert len(accesses) == max(1, int(full * 0.25))


def test_sparse_subset_order_varies_with_rng():
    engine, manager, device = make()
    table = device.empty((32 * UM_BLOCK_SIZE // 4,), persistent=True)
    k = launch([table], sparse=SparseAccess(tensor_index=0, coverage=0.5))
    first = [a.block.index for a in manager._build_accesses(k, device)]
    second = [a.block.index for a in manager._build_accesses(k, device)]
    assert set(first) != set(second) or first != second


def test_runtime_callback_invoked_before_launch():
    from repro.config import DeepUMConfig
    from repro.core.deepum import DeepUM

    system = SystemConfig(gpu=GPUSpec(memory_bytes=64 * MiB),
                          host=HostSpec(memory_bytes=1 * GiB))
    deepum = DeepUM(system, DeepUMConfig())
    calls = []
    orig = deepum.driver.notify_execution_id
    deepum.driver.notify_execution_id = \
        lambda eid, now: (calls.append(eid), orig(eid, now))
    t = deepum.device.empty((1024,))
    deepum.device.submit(launch([t]))
    assert len(calls) == 1


def test_elapsed_includes_trailing_link_time():
    engine, manager, device = make()
    engine.link.occupy(0.0, int(12e9), to_gpu=True)  # ~1 s of transfer
    t = device.empty((1024,))
    device.submit(launch([t], flops=1.0))
    assert manager.elapsed() >= 1.0
