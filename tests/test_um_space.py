"""Unified memory space: allocation, population, block materialization."""

import pytest

from repro.constants import PAGE_SIZE, UM_BLOCK_SIZE
from repro.sim.um_space import BlockLocation, UnifiedMemorySpace


@pytest.fixture
def um():
    return UnifiedMemorySpace()


def test_allocate_rounds_to_page(um):
    alloc = um.allocate(1)
    assert alloc.nbytes == PAGE_SIZE


def test_allocate_respects_alignment(um):
    alloc = um.allocate(100, alignment=UM_BLOCK_SIZE)
    assert alloc.addr % UM_BLOCK_SIZE == 0


def test_allocate_rejects_nonpositive(um):
    with pytest.raises(ValueError):
        um.allocate(0)


def test_allocations_do_not_overlap(um):
    allocs = [um.allocate(3 * PAGE_SIZE) for _ in range(10)]
    ranges = sorted((a.addr, a.end) for a in allocs)
    for (_, end1), (start2, _) in zip(ranges, ranges[1:]):
        assert end1 <= start2


def test_free_and_reuse_same_size(um):
    a = um.allocate(4 * PAGE_SIZE)
    addr = a.addr
    um.free(addr)
    b = um.allocate(4 * PAGE_SIZE)
    assert b.addr == addr  # freed range reused: stable addresses across iters


def test_free_unknown_address_raises(um):
    with pytest.raises(KeyError):
        um.free(0xdead0000)


def test_blocks_materialize_lazily(um):
    assert um.num_blocks == 0
    blk = um.block(7)
    assert blk.index == 7
    assert um.num_blocks == 1
    assert um.block(7) is blk


def test_new_block_is_unpopulated(um):
    blk = um.block(0)
    assert blk.location is BlockLocation.UNPOPULATED
    assert blk.populated_pages == 0


def test_populate_clamps_at_512(um):
    blk = um.block(0)
    blk.populate(400)
    blk.populate(400)
    assert blk.populated_pages == 512
    assert blk.populated_bytes == UM_BLOCK_SIZE


def test_populate_keeps_location_unpopulated(um):
    """First touch decides placement; populate only reserves backing."""
    blk = um.block(0)
    blk.populate(10)
    assert blk.location is BlockLocation.UNPOPULATED


def test_touch_populates_partial_edge_blocks(um):
    alloc = um.allocate(UM_BLOCK_SIZE + 4 * PAGE_SIZE, alignment=UM_BLOCK_SIZE)
    blocks = um.touch(alloc.addr, alloc.nbytes)
    assert len(blocks) == 2
    assert blocks[0].populated_pages == 512
    assert blocks[1].populated_pages == 4


def test_blocks_of_spans_range(um):
    alloc = um.allocate(3 * UM_BLOCK_SIZE, alignment=UM_BLOCK_SIZE)
    blocks = um.blocks_of(alloc.addr, alloc.nbytes)
    assert len(blocks) == 3
    assert [b.index for b in blocks] == sorted(b.index for b in blocks)


def test_total_populated_bytes_accumulates(um):
    um.touch(um.allocate(2 * UM_BLOCK_SIZE, alignment=UM_BLOCK_SIZE).addr,
             2 * UM_BLOCK_SIZE)
    assert um.total_populated_bytes == 2 * UM_BLOCK_SIZE
