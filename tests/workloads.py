"""Toy trainable workloads shared across tests."""

from __future__ import annotations

from repro.torchsim import functional as F
from repro.torchsim import layers
from repro.torchsim.autograd import Tape
from repro.torchsim.context import Device
from repro.torchsim.dtypes import int64
from repro.torchsim.optim import SGD


def make_mlp_workload(device: Device, *, layers_n: int = 4, dim: int = 256,
                      batch: int = 32):
    """A small trainable MLP; returns (step_fn, modules, optimizer)."""
    lins = [layers.Linear(device, dim, dim, name=f"l{i}") for i in range(layers_n)]
    opt = SGD(device, [p for lin in lins for p in lin.parameters()])
    targets = device.empty((batch,), int64, persistent=True, name="t")

    def step() -> None:
        tape = Tape(device=device)
        x = device.empty((batch, dim), name="x")
        h = x
        for lin in lins:
            h = lin(tape, h)
            h = F.relu(tape, h)
        loss = F.cross_entropy(tape, h, targets)
        tape.backward(loss)
        opt.step()
        opt.zero_grad()
        x.release()

    return step, lins, opt
